// Package optimizer implements a System-R style dynamic-programming query
// optimizer over the shared cost model: bottom-up enumeration of connected
// join subsets with hash-join, merge-join, nested-loop and index-nested-loop
// physical alternatives. The paper treats the optimizer as a black box
// mapping an ESS location q to the optimal plan Pq and its cost Cost(Pq,q)
// (Sec 2.2); this package is that box, with predicate selectivities injected
// through cost.Location.
package optimizer

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
)

// Optimizer finds optimal plans for one query under one cost model.
// It is safe for sequential reuse across many locations; the DP scratch
// tables are retained between calls to avoid reallocation.
type Optimizer struct {
	model *cost.Model
	q     *query.Query
	n     int

	// Static per-subset precomputation.
	internalJoins [][]int // joins with both sides inside the subset

	// Per-call scratch, reused across Optimize calls.
	entries []dpEntry
}

// dpEntry is the DP table slot for one relation subset.
type dpEntry struct {
	valid bool
	nc    cost.NodeCost
	// Decision record for plan reconstruction.
	kind     plan.OpKind
	leftSet  uint64
	rightSet uint64
	joinIDs  []int
	rel      int // scan relation for singletons
}

// maxRelations bounds the DP table size (2^16 subsets).
const maxRelations = 16

// New builds an optimizer for the model's query.
func New(m *cost.Model) (*Optimizer, error) {
	q := m.Query
	n := len(q.Relations)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: query has no relations")
	}
	if n > maxRelations {
		return nil, fmt.Errorf("optimizer: %d relations exceeds the %d-relation limit", n, maxRelations)
	}
	o := &Optimizer{model: m, q: q, n: n}
	size := 1 << uint(n)
	o.internalJoins = make([][]int, size)
	for s := 1; s < size; s++ {
		for _, j := range q.Joins {
			if s&(1<<uint(j.LeftRel)) != 0 && s&(1<<uint(j.RightRel)) != 0 {
				o.internalJoins[s] = append(o.internalJoins[s], j.ID)
			}
		}
	}
	o.entries = make([]dpEntry, size)
	return o, nil
}

// MustNew is New that panics on error.
func MustNew(m *cost.Model) *Optimizer {
	o, err := New(m)
	if err != nil {
		panic(err)
	}
	return o
}

// Model returns the underlying cost model.
func (o *Optimizer) Model() *cost.Model { return o.model }

// Optimize returns the optimal plan and its cost at the given ESS location.
// The returned cost is Cost(Pq, q) in the paper's notation.
func (o *Optimizer) Optimize(at cost.Location) (*plan.Plan, float64) {
	if len(at) != o.q.D() {
		panic(fmt.Sprintf("optimizer: location has %d dims, query has %d epps", len(at), o.q.D()))
	}
	size := 1 << uint(o.n)
	for i := range o.entries {
		o.entries[i].valid = false
	}

	// Singletons.
	for r := 0; r < o.n; r++ {
		s := 1 << uint(r)
		o.entries[s] = dpEntry{valid: true, nc: o.model.ScanNC(r), kind: plan.SeqScan, rel: r}
	}

	// Subsets by increasing population count. Iterating masks in numeric
	// order already guarantees every proper submask precedes its superset.
	var crossBuf []int
	for s := 3; s < size; s++ {
		if bits.OnesCount64(uint64(s)) < 2 {
			continue
		}
		best := dpEntry{}
		bestCost := math.Inf(1)
		inS := o.internalJoins[s]
		// Enumerate ordered splits (s1 = probe/outer, s2 = build/inner).
		for s1 := (s - 1) & s; s1 > 0; s1 = (s1 - 1) & s {
			s2 := s &^ s1
			e1, e2 := &o.entries[s1], &o.entries[s2]
			if !e1.valid || !e2.valid {
				continue
			}
			// Join predicates crossing the split: internal to s but not to
			// either side.
			crossBuf = crossBuf[:0]
			for _, id := range inS {
				j := &o.q.Joins[id]
				b1 := uint64(1) << uint(j.LeftRel)
				if (s1&int(b1) != 0) != (s1&(1<<uint(j.RightRel)) != 0) {
					crossBuf = append(crossBuf, id)
				}
			}
			if len(crossBuf) == 0 {
				continue // no cross product plans
			}
			consider := func(kind plan.OpKind, l, r cost.NodeCost, innerRel int) {
				nc := o.model.JoinNC(kind, crossBuf, l, r, innerRel, at)
				if nc.Total < bestCost {
					bestCost = nc.Total
					best = dpEntry{
						valid: true, nc: nc, kind: kind,
						leftSet: uint64(s1), rightSet: uint64(s2),
						joinIDs: append([]int(nil), crossBuf...),
					}
				}
			}
			consider(plan.HashJoin, e1.nc, e2.nc, -1)
			consider(plan.MergeJoin, o.model.SortNC(e1.nc), o.model.SortNC(e2.nc), -1)
			consider(plan.NestLoop, e1.nc, e2.nc, -1)
			if bits.OnesCount64(uint64(s2)) == 1 {
				rel := bits.TrailingZeros64(uint64(s2))
				consider(plan.IndexNestLoop, e1.nc, cost.NodeCost{}, rel)
			}
		}
		if best.valid {
			o.entries[s] = best
		}
	}

	full := size - 1
	if !o.entries[full].valid {
		panic("optimizer: no plan for the full relation set (disconnected query?)")
	}
	root := o.reconstruct(uint64(full))
	total := o.entries[full].nc.Total
	if len(o.q.GroupBy) > 0 {
		nc := o.model.AggNC(o.entries[full].nc)
		root = &plan.Node{Kind: plan.Aggregate, Rel: -1, Left: root}
		total = nc.Total
	}
	return plan.New(root), total
}

// reconstruct rebuilds the plan tree for a DP subset.
func (o *Optimizer) reconstruct(set uint64) *plan.Node {
	e := &o.entries[set]
	if e.kind == plan.SeqScan {
		return &plan.Node{Kind: plan.SeqScan, Rel: e.rel}
	}
	left := o.reconstruct(e.leftSet)
	right := o.reconstruct(e.rightSet)
	if e.kind == plan.MergeJoin {
		left = &plan.Node{Kind: plan.Sort, Rel: -1, Left: left}
		right = &plan.Node{Kind: plan.Sort, Rel: -1, Left: right}
	}
	return &plan.Node{Kind: e.kind, Rel: -1, JoinIDs: e.joinIDs, Left: left, Right: right}
}
