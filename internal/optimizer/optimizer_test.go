package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sqlmini"
)

func testCatalog() *catalog.Catalog {
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 20000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "p_retailprice", Distinct: 1000, Min: 0, Max: 2000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000},
			{Name: "o_custkey", Distinct: 10000, Min: 1, Max: 10000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "customer", Rows: 10000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "c_custkey", Distinct: 10000, Min: 1, Max: 10000},
		},
	})
	return c
}

func exampleOptimizer(t *testing.T) *Optimizer {
	t.Helper()
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
		AND p.p_retailprice < 1000`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	o, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOptimizeReturnsConsistentCost(t *testing.T) {
	o := exampleOptimizer(t)
	at := cost.Location{1e-4, 1e-5}
	p, c := o.Optimize(at)
	if p == nil {
		t.Fatal("nil plan")
	}
	// The reported cost must equal re-evaluating the plan.
	if ev := o.Model().Eval(p, at); math.Abs(ev-c)/c > 1e-9 {
		t.Errorf("Optimize cost %g != Eval %g", c, ev)
	}
	// The plan must cover all three relations exactly once.
	if p.Relations() != 0b111 {
		t.Errorf("plan relations = %b, want 111", p.Relations())
	}
}

func TestOptimalityAgainstHandBuiltPlans(t *testing.T) {
	o := exampleOptimizer(t)
	m := o.Model()
	hand := []*plan.Plan{
		plan.New(&plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{1},
			Left: &plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
				Left:  &plan.Node{Kind: plan.SeqScan, Rel: 0},
				Right: &plan.Node{Kind: plan.SeqScan, Rel: 1}},
			Right: &plan.Node{Kind: plan.SeqScan, Rel: 2}}),
		plan.New(&plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
			Left: &plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{1},
				Left:  &plan.Node{Kind: plan.SeqScan, Rel: 1},
				Right: &plan.Node{Kind: plan.SeqScan, Rel: 2}},
			Right: &plan.Node{Kind: plan.SeqScan, Rel: 0}}),
		plan.New(&plan.Node{Kind: plan.IndexNestLoop, Rel: -1, JoinIDs: []int{1},
			Left: &plan.Node{Kind: plan.IndexNestLoop, Rel: -1, JoinIDs: []int{0},
				Left:  &plan.Node{Kind: plan.SeqScan, Rel: 0},
				Right: &plan.Node{Kind: plan.SeqScan, Rel: 1}},
			Right: &plan.Node{Kind: plan.SeqScan, Rel: 2}}),
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		at := cost.Location{
			math.Pow(10, -7*rng.Float64()),
			math.Pow(10, -7*rng.Float64()),
		}
		_, opt := o.Optimize(at)
		for i, h := range hand {
			if hc := m.Eval(h, at); hc < opt-1e-6 {
				t.Fatalf("hand plan %d cheaper at %v: %g < %g", i, at, hc, opt)
			}
		}
	}
}

func TestPlanDiversityAcrossESS(t *testing.T) {
	o := exampleOptimizer(t)
	seen := map[string]bool{}
	for _, x := range []float64{1e-8, 1e-6, 1e-4, 1e-2, 1} {
		for _, y := range []float64{1e-8, 1e-6, 1e-4, 1e-2, 1} {
			p, _ := o.Optimize(cost.Location{x, y})
			seen[p.Fingerprint()] = true
		}
	}
	if len(seen) < 2 {
		t.Errorf("POSP has %d plans over the ESS sample; expected diversity", len(seen))
	}
}

func TestOptimalCostSurfaceMonotone(t *testing.T) {
	// PCM for the *optimal* surface: Cost(Pq,q) nondecreasing along every
	// axis (follows from per-plan PCM and minimization).
	o := exampleOptimizer(t)
	sels := []float64{1e-8, 1e-6, 1e-4, 1e-2, 1}
	prev := -1.0
	for _, x := range sels {
		_, c := o.Optimize(cost.Location{x, 1e-4})
		if c < prev {
			t.Errorf("optimal cost decreased along x: %g after %g", c, prev)
		}
		prev = c
	}
	prev = -1.0
	for _, y := range sels {
		_, c := o.Optimize(cost.Location{1e-4, y})
		if c < prev {
			t.Errorf("optimal cost decreased along y: %g after %g", c, prev)
		}
		prev = c
	}
}

func TestDeterminism(t *testing.T) {
	o := exampleOptimizer(t)
	at := cost.Location{1e-3, 1e-3}
	p1, c1 := o.Optimize(at)
	p2, c2 := o.Optimize(at)
	if p1.Fingerprint() != p2.Fingerprint() || c1 != c2 {
		t.Errorf("non-deterministic: %q/%g vs %q/%g", p1.Fingerprint(), c1, p2.Fingerprint(), c2)
	}
}

func TestFourRelationChain(t *testing.T) {
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o, customer c
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
		AND o.o_custkey = c.c_custkey`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	o := MustNew(m)
	p, c := o.Optimize(cost.Location{1e-5})
	if p.Relations() != 0b1111 {
		t.Errorf("relations = %b", p.Relations())
	}
	if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
		t.Errorf("cost = %g", c)
	}
	// Every join predicate must be applied exactly once across the tree.
	applied := map[int]int{}
	p.Walk(func(n *plan.Node) {
		for _, id := range n.JoinIDs {
			applied[id]++
		}
	})
	for id := 0; id < 3; id++ {
		if applied[id] != 1 {
			t.Errorf("join %d applied %d times", id, applied[id])
		}
	}
}

func TestLocationDimensionMismatchPanics(t *testing.T) {
	o := exampleOptimizer(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong location dimensionality")
		}
	}()
	o.Optimize(cost.Location{0.5})
}

func TestCommercialProfileChangesPlans(t *testing.T) {
	// The same query under a different platform profile may pick different
	// plans somewhere in the ESS — the premise of the paper's platform-
	// dependence critique. We only require the cost surfaces to differ.
	qp := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey`)
	if err := qp.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	opg := MustNew(cost.MustNewModel(qp, cost.PostgresLike()))
	ocm := MustNew(cost.MustNewModel(qp, cost.CommercialLike()))
	differs := false
	for _, x := range []float64{1e-6, 1e-3, 1} {
		for _, y := range []float64{1e-6, 1e-3, 1} {
			_, c1 := opg.Optimize(cost.Location{x, y})
			_, c2 := ocm.Optimize(cost.Location{x, y})
			if math.Abs(c1-c2) > 1e-6 {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("profiles produce identical optimal cost surfaces")
	}
}
