package optimizer

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sqlmini"
)

func TestTopKFirstMatchesOptimize(t *testing.T) {
	o := exampleOptimizer(t)
	for _, at := range []cost.Location{{1e-6, 1e-6}, {1e-3, 1e-4}, {0.5, 0.5}} {
		p, c := o.Optimize(at)
		top := o.TopK(at, 4)
		if len(top) == 0 {
			t.Fatalf("TopK empty at %v", at)
		}
		if math.Abs(top[0].Cost-c)/c > 1e-9 {
			t.Errorf("at %v: TopK[0] cost %g != optimal %g", at, top[0].Cost, c)
		}
		if top[0].Plan.Fingerprint() != p.Fingerprint() {
			t.Errorf("at %v: TopK[0] plan differs from Optimize", at)
		}
	}
}

func TestTopKSortedAndDistinct(t *testing.T) {
	o := exampleOptimizer(t)
	at := cost.Location{1e-4, 1e-3}
	top := o.TopK(at, 8)
	if len(top) < 2 {
		t.Fatalf("expected multiple alternatives, got %d", len(top))
	}
	seen := map[string]bool{}
	for i, sp := range top {
		if i > 0 && sp.Cost < top[i-1].Cost-1e-9 {
			t.Errorf("TopK not sorted at %d: %g after %g", i, sp.Cost, top[i-1].Cost)
		}
		if seen[sp.Plan.Fingerprint()] {
			t.Errorf("duplicate plan at %d", i)
		}
		seen[sp.Plan.Fingerprint()] = true
		// Each plan's reported cost must match re-evaluation.
		if ev := o.Model().Eval(sp.Plan, at); math.Abs(ev-sp.Cost)/sp.Cost > 1e-9 {
			t.Errorf("plan %d: cost %g != eval %g", i, sp.Cost, ev)
		}
	}
}

func TestTopKClamps(t *testing.T) {
	o := exampleOptimizer(t)
	at := cost.Location{1e-4, 1e-3}
	if got := o.TopK(at, 0); len(got) != 1 {
		t.Errorf("k=0 should clamp to 1, got %d", len(got))
	}
	if got := o.TopK(at, 100); len(got) > 16 {
		t.Errorf("k=100 should clamp to 16, got %d", len(got))
	}
}

func TestTopKPanicsOnDimMismatch(t *testing.T) {
	o := exampleOptimizer(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	o.TopK(cost.Location{0.5}, 2)
}

func TestBestSpillingOn(t *testing.T) {
	o := exampleOptimizer(t)
	at := cost.Location{1e-3, 1e-3}
	_, optCost := o.Optimize(at)
	epps := o.Model().Query.EPPs
	found := 0
	for dim := 0; dim < 2; dim++ {
		sp, ok := o.BestSpillingOn(at, dim, 8, nil)
		if !ok {
			continue
		}
		found++
		// The returned plan must indeed spill on the requested dimension.
		tgt, has := sp.Plan.SpillTarget(epps, nil)
		if !has {
			t.Fatalf("dim %d: plan has no spill target", dim)
		}
		if d, _ := o.Model().Query.IsEPP(tgt.JoinID); d != dim {
			t.Errorf("dim %d: plan spills on %d", dim, d)
		}
		// Constrained best can never beat the unconstrained optimum.
		if sp.Cost < optCost-1e-9 {
			t.Errorf("dim %d: constrained cost %g below optimum %g", dim, sp.Cost, optCost)
		}
	}
	if found == 0 {
		t.Error("no dimension had a spill-constrained plan within the beam")
	}
}

func TestOptimizeWithGroupBy(t *testing.T) {
	q := sqlmini.MustParse(testCatalog(), `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
		GROUP BY p.p_retailprice`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	o := MustNew(m)
	at := cost.Location{1e-4, 1e-4}
	p, c := o.Optimize(at)
	if p.Root.Kind != plan.Aggregate {
		t.Fatalf("root = %v, want Aggregate", p.Root.Kind)
	}
	// Cost must equal re-evaluation and exceed the join-only plan.
	if ev := m.Eval(p, at); math.Abs(ev-c)/c > 1e-9 {
		t.Errorf("cost %g != eval %g", c, ev)
	}
	inner := plan.New(p.Root.Left)
	if m.Eval(inner, at) >= c {
		t.Error("aggregate should add cost")
	}
	// Aggregated output is capped by the group estimate.
	tree := m.EvalTree(p, at)
	if tree[p.Root].Rows > tree[p.Root.Left].Rows {
		t.Error("aggregate output exceeds its input")
	}
	// Spill machinery still works: epps live below the aggregate.
	if _, ok := p.SpillTarget(q.EPPs, nil); !ok {
		t.Error("no spill target under the aggregate")
	}
	// TopK wraps every alternative too.
	for _, sp := range o.TopK(at, 4) {
		if sp.Plan.Root.Kind != plan.Aggregate {
			t.Fatal("TopK plan missing aggregate root")
		}
	}
}
