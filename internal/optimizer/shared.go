package optimizer

import (
	"math"
	"sync"

	"repro/internal/cost"
	"repro/internal/plan"
)

// memoLimit bounds Shared's result cache. Sessions optimize at a handful of
// recurring locations (the statistics estimate, run truths, sweep oracle
// denominators); a few thousand entries cover realistic workloads while
// keeping the worst case bounded.
const memoLimit = 4096

// sharedResult is one memoized Optimize outcome.
type sharedResult struct {
	p *plan.Plan
	c float64
}

// Shared wraps an Optimizer for concurrent use with a bounded memo of
// Optimize results keyed by exact location. The underlying DP scratch
// tables are reused across calls and guarded by a mutex, so a Session can
// hold one Shared for its whole lifetime instead of rebuilding an optimizer
// per call; repeated optimizations at the same location (the estimate
// location, sweep denominators) are answered from the memo without taking
// the optimizer lock. Plans are immutable after construction, so returning
// a memoized *plan.Plan to concurrent callers is safe.
type Shared struct {
	mu  sync.Mutex
	opt *Optimizer

	memoMu sync.RWMutex
	memo   map[string]sharedResult
}

// NewShared builds a concurrent memoized optimizer for the model's query.
func NewShared(m *cost.Model) (*Shared, error) {
	o, err := New(m)
	if err != nil {
		return nil, err
	}
	return &Shared{opt: o, memo: make(map[string]sharedResult)}, nil
}

// Model returns the underlying cost model.
func (s *Shared) Model() *cost.Model { return s.opt.Model() }

// Optimize returns the optimal plan and cost at the location, consulting
// the memo first. Safe for concurrent use.
func (s *Shared) Optimize(at cost.Location) (*plan.Plan, float64) {
	key := locKey(at)
	s.memoMu.RLock()
	r, ok := s.memo[key]
	s.memoMu.RUnlock()
	if ok {
		return r.p, r.c
	}
	s.mu.Lock()
	p, c := s.opt.Optimize(at)
	s.mu.Unlock()
	s.memoMu.Lock()
	if len(s.memo) >= memoLimit {
		// Wholesale reset: simpler than LRU bookkeeping, and the hot keys
		// (estimate location, active truths) repopulate within a call each.
		s.memo = make(map[string]sharedResult)
	}
	s.memo[key] = sharedResult{p: p, c: c}
	s.memoMu.Unlock()
	return p, c
}

// locKey renders a location's exact float bits as a map key.
func locKey(at cost.Location) string {
	b := make([]byte, 0, 8*len(at))
	for _, v := range at {
		u := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b = append(b, byte(u>>(8*i)))
		}
	}
	return string(b)
}
