package optimizer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
)

// enumerateAll exhaustively generates every plan tree over the relation set
// (bitmask), mirroring the DP's alternative space: all binary partitions,
// all physical operators, index-nested-loops only onto base relations, and
// merge joins with sorted inputs. Used as a brute-force optimality oracle.
func enumerateAll(o *Optimizer, set int) []*plan.Node {
	if set&(set-1) == 0 { // singleton
		rel := 0
		for set>>uint(rel)&1 == 0 {
			rel++
		}
		return []*plan.Node{{Kind: plan.SeqScan, Rel: rel}}
	}
	var out []*plan.Node
	for s1 := (set - 1) & set; s1 > 0; s1 = (s1 - 1) & set {
		s2 := set &^ s1
		var cross []int
		for _, id := range o.internalJoins[set] {
			j := &o.q.Joins[id]
			if (s1&(1<<uint(j.LeftRel)) != 0) != (s1&(1<<uint(j.RightRel)) != 0) {
				cross = append(cross, id)
			}
		}
		if len(cross) == 0 {
			continue
		}
		lefts := enumerateAll(o, s1)
		rights := enumerateAll(o, s2)
		for _, l := range lefts {
			for _, r := range rights {
				out = append(out,
					&plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: cross, Left: l, Right: r},
					&plan.Node{Kind: plan.NestLoop, Rel: -1, JoinIDs: cross, Left: l, Right: r},
					&plan.Node{Kind: plan.MergeJoin, Rel: -1, JoinIDs: cross,
						Left:  &plan.Node{Kind: plan.Sort, Rel: -1, Left: l},
						Right: &plan.Node{Kind: plan.Sort, Rel: -1, Left: r}},
				)
				if s2&(s2-1) == 0 {
					out = append(out, &plan.Node{Kind: plan.IndexNestLoop, Rel: -1, JoinIDs: cross, Left: l, Right: r})
				}
			}
		}
	}
	return out
}

// TestDPMatchesBruteForce proves the DP optimizer exact over its own
// alternative space: at random ESS locations, Optimize's cost equals the
// minimum over the exhaustively enumerated plan set.
func TestDPMatchesBruteForce(t *testing.T) {
	o := exampleOptimizer(t)
	m := o.Model()
	full := (1 << uint(o.n)) - 1
	// The enumeration reuses the DP's internalJoins table, which is
	// location-independent.
	all := enumerateAll(o, full)
	if len(all) < 20 {
		t.Fatalf("enumeration produced only %d plans", len(all))
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		at := cost.Location{
			math.Pow(10, -7*rng.Float64()),
			math.Pow(10, -7*rng.Float64()),
		}
		_, dpCost := o.Optimize(at)
		best := math.Inf(1)
		for _, root := range all {
			if c := m.Eval(plan.New(root), at); c < best {
				best = c
			}
		}
		if math.Abs(dpCost-best)/best > 1e-9 {
			t.Fatalf("at %v: DP %g != brute force %g", at, dpCost, best)
		}
	}
}
