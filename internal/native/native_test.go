package native

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/sqlmini"
)

func buildSpace(t *testing.T, res int) *ess.Space {
	t.Helper()
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 20000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 20000, Min: 1, Max: 20000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	q := sqlmini.MustParse(c, `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(2, res, 1e-6))
}

func TestSubOptAtLeastOne(t *testing.T) {
	s := buildSpace(t, 10)
	for ci := 0; ci < s.Grid.Size(); ci++ {
		if so := SubOpt(s, ci); so < 1-1e-9 {
			t.Fatalf("cell %d: SubOpt %g < 1", ci, so)
		}
	}
}

func TestSubOptAtEstimateIsOptimal(t *testing.T) {
	s := buildSpace(t, 10)
	// When the truth coincides with the (snapped) estimate, the native
	// optimizer is optimal.
	g := s.Grid
	est := s.Model.EstimateLocation()
	idx := make([]int, g.D)
	for d := range idx {
		idx[d] = g.CeilIndex(d, est[d])
	}
	ci := g.Flatten(idx)
	if so := SubOpt(s, ci); so > 1+1e-9 {
		t.Errorf("SubOpt at the estimate cell = %g, want 1", so)
	}
}

func TestMSOExceedsRobustAlgorithms(t *testing.T) {
	s := buildSpace(t, 10)
	mso := MSO(s, 1)
	if mso < 1 {
		t.Fatalf("native MSO = %g", mso)
	}
	// The whole point of the paper: the native optimizer's worst case is
	// far beyond SpillBound's D²+3D = 10 on selectivity-trap workloads.
	if mso <= 10 {
		t.Logf("note: native MSO %g unexpectedly tame on this toy query", mso)
	}
	// Subsampled MSO is a lower bound on exhaustive MSO.
	if sub := MSO(s, 3); sub > mso+1e-9 {
		t.Errorf("stride-3 MSO %g exceeds exhaustive %g", sub, mso)
	}
	// Stride < 1 is clamped.
	if MSO(s, 0) != mso {
		t.Error("MSO(0) should behave as stride 1")
	}
}

func TestASO(t *testing.T) {
	s := buildSpace(t, 10)
	aso := ASO(s)
	if aso < 1 {
		t.Fatalf("ASO = %g < 1", aso)
	}
	if mso := MSO(s, 1); aso > mso {
		t.Errorf("ASO %g exceeds MSO %g", aso, mso)
	}
}
