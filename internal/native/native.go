// Package native models the traditional optimize-then-execute baseline the
// paper contrasts against (Sec 2.3): the optimizer estimates the epp
// selectivities from statistics (the AVI-style defaults of the cost model),
// picks the plan optimal at that estimated location q_e, and runs it to
// completion at the actual location q_a regardless of how wrong the
// estimate was. Its sub-optimality SubOpt(q_e,q_a) = Cost(P_qe,q_a) /
// Cost(P_qa,q_a) (Eq. 1) is unbounded — the motivation for robust query
// processing.
package native

import (
	"repro/internal/cost"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// SubOpt returns the native optimizer's sub-optimality when the true
// location is the grid cell truthCell and the estimate is the model's
// statistics-derived location (Eq. 1).
func SubOpt(s *ess.Space, truthCell int) float64 {
	est := s.Model.EstimateLocation()
	return SubOptAt(s, est, truthCell)
}

// SubOptAt returns the sub-optimality of executing the plan optimal at the
// estimate location est when the truth is the grid cell truthCell.
func SubOptAt(s *ess.Space, est cost.Location, truthCell int) float64 {
	g := s.Grid
	// Snap the estimate to its covering grid cell and take that cell's
	// optimal plan — the plan the native optimizer would pick.
	idx := make([]int, g.D)
	for d := 0; d < g.D; d++ {
		idx[d] = g.CeilIndex(d, est[d])
	}
	p := s.PlanAt(g.Flatten(idx))
	actual := s.Model.Eval(p, g.Location(truthCell))
	return actual / s.CostAt(truthCell)
}

// MSO returns the native optimizer's maximum sub-optimality per Eq. (2):
// the maximum of SubOpt(q_e, q_a) over all estimate/actual grid-cell pairs
// ("assuming that estimation errors can range over the entire selectivity
// space", footnote 1), plus the plan at the exact statistics-derived
// estimate (which may fall between grid points and be the worst trap of
// all). stride subsamples the estimate axis for large grids
// (1 = exhaustive).
func MSO(s *ess.Space, stride int) float64 {
	if stride < 1 {
		stride = 1
	}
	g := s.Grid
	worst := 0.0
	eval := func(p *plan.Plan) {
		for qa := 0; qa < g.Size(); qa += stride {
			so := s.Model.Eval(p, g.Location(qa)) / s.CostAt(qa)
			if so > worst {
				worst = so
			}
		}
	}
	for qe := 0; qe < g.Size(); qe += stride {
		eval(s.PlanAt(qe))
	}
	if o, err := optimizer.New(s.Model); err == nil {
		p, _ := o.Optimize(s.Model.EstimateLocation())
		eval(p)
	}
	return worst
}

// ASO returns the native optimizer's average sub-optimality per Eq. (8)
// with the estimate fixed at the statistics-derived location and all q_a
// equally likely.
func ASO(s *ess.Space) float64 {
	g := s.Grid
	est := s.Model.EstimateLocation()
	idx := make([]int, g.D)
	for d := 0; d < g.D; d++ {
		idx[d] = g.CeilIndex(d, est[d])
	}
	p := s.PlanAt(g.Flatten(idx))
	sum := 0.0
	for qa := 0; qa < g.Size(); qa++ {
		sum += s.Model.Eval(p, g.Location(qa)) / s.CostAt(qa)
	}
	return sum / float64(g.Size())
}
