package estimate

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/query"
	"repro/internal/rowexec"
)

// skewedQuery builds a two-table join whose columns carry the given skew.
func skewedQuery(t *testing.T, skew float64) *query.Query {
	t.Helper()
	c := catalog.New("t")
	c.MustAddTable(&catalog.Table{
		Name: "l", Rows: 10000, RowBytes: 40,
		Columns: []catalog.Column{{Name: "k", Distinct: 500, Min: 1, Max: 500, Skew: skew}},
	})
	c.MustAddTable(&catalog.Table{
		Name: "r", Rows: 20000, RowBytes: 40,
		Columns: []catalog.Column{{Name: "k", Distinct: 500, Min: 1, Max: 500, Skew: skew}},
	})
	q := &query.Query{
		Name: "skewed",
		Relations: []query.Relation{
			{Alias: "l", Table: mustTable(c, "l")},
			{Alias: "r", Table: mustTable(c, "r")},
		},
		Joins: []query.Join{{
			ID:   0,
			Left: query.ColumnRef{Alias: "l", Column: "k"}, Right: query.ColumnRef{Alias: "r", Column: "k"},
		}},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	return q
}

func mustTable(c *catalog.Catalog, name string) *catalog.Table {
	t, ok := c.Table(name)
	if !ok {
		panic(name)
	}
	return t
}

func TestAVIMatchesTruthOnUniformData(t *testing.T) {
	q := skewedQuery(t, 0)
	avi, err := AVIJoinSelectivity(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := TrueJoinSelectivity(q, 0, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if f := ErrorFactor(truth, avi); f > 1.1 {
		t.Errorf("uniform data: AVI off by %.2f× (truth %g, est %g)", f, truth, avi)
	}
}

// TestAVIErrsOnSkewedData is the paper's premise: statistics-only
// estimates are "often significantly in error" — under heavy-hitter skew
// the true join selectivity is far above 1/max(NDV).
func TestAVIErrsOnSkewedData(t *testing.T) {
	prev := 1.0
	for _, skew := range []float64{1, 2, 4} {
		q := skewedQuery(t, skew)
		avi, _ := AVIJoinSelectivity(q, 0)
		truth, _ := TrueJoinSelectivity(q, 0, 40000)
		f := ErrorFactor(truth, avi)
		if f < prev {
			t.Errorf("skew %g: error factor %.2f did not grow (prev %.2f)", skew, f, prev)
		}
		prev = f
		if truth < avi {
			t.Errorf("skew %g: heavy hitters should raise the true selectivity above AVI", skew)
		}
	}
	if prev < 5 {
		t.Errorf("at skew 4 the AVI error factor is only %.2f; expected substantial error", prev)
	}
}

func TestSampledBeatsAVIOnSkew(t *testing.T) {
	q := skewedQuery(t, 3)
	avi, _ := AVIJoinSelectivity(q, 0)
	sampled, err := SampledJoinSelectivity(q, 0, 5000)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := TrueJoinSelectivity(q, 0, 40000)
	if ErrorFactor(truth, sampled) >= ErrorFactor(truth, avi) {
		t.Errorf("sampling (%.2g, err %.2f×) should beat AVI (%.2g, err %.2f×) against truth %.2g",
			sampled, ErrorFactor(truth, sampled), avi, ErrorFactor(truth, avi), truth)
	}
}

func TestHistogramRangeEstimation(t *testing.T) {
	col := catalog.Column{Name: "c", Distinct: 1000, Min: 0, Max: 1000, Skew: 2}
	h, err := BuildHistogram(col, 20000, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth by brute force.
	truthLE := func(v rowexec.Value) float64 {
		n := int64(0)
		const rows = 20000
		for r := int64(0); r < rows; r++ {
			if rowexec.ColumnValue(col, r) <= v {
				n++
			}
		}
		return float64(n) / rows
	}
	for _, v := range []rowexec.Value{10, 50, 200, 600} {
		hist := h.SelectivityLE(v)
		truth := truthLE(v)
		uni := UniformSelectivityLE(col, v)
		if math.Abs(hist-truth) > 0.08 {
			t.Errorf("v=%d: histogram %.3f vs truth %.3f", v, hist, truth)
		}
		// On skewed data the histogram must beat the uniform assumption.
		if math.Abs(hist-truth) > math.Abs(uni-truth) {
			t.Errorf("v=%d: histogram (%.3f) worse than uniform (%.3f) against %.3f", v, hist, uni, truth)
		}
	}
	// Extremes.
	if h.SelectivityLE(0) > 0.1 {
		t.Error("LE(0) should be near zero")
	}
	if h.SelectivityLE(100000) != 1 {
		t.Error("LE(max) should be 1")
	}
}

func TestBuildHistogramErrors(t *testing.T) {
	col := catalog.Column{Name: "c", Distinct: 10, Min: 0, Max: 10}
	if _, err := BuildHistogram(col, 5, 10); err == nil {
		t.Error("rows < buckets should fail")
	}
	if _, err := BuildHistogram(col, 5, 0); err == nil {
		t.Error("zero buckets should fail")
	}
}

func TestUniformSelectivityLE(t *testing.T) {
	col := catalog.Column{Name: "c", Distinct: 100}
	if UniformSelectivityLE(col, 0) != 0 || UniformSelectivityLE(col, 100) != 1 {
		t.Error("endpoints wrong")
	}
	if got := UniformSelectivityLE(col, 25); got != 0.25 {
		t.Errorf("LE(25) = %g", got)
	}
}

func TestErrorFactor(t *testing.T) {
	if ErrorFactor(0.1, 0.01) != 10 || ErrorFactor(0.01, 0.1) != 10 {
		t.Error("symmetric error factor broken")
	}
	if ErrorFactor(1, 1) != 1 {
		t.Error("exact estimate should be factor 1")
	}
	if ErrorFactor(0, 1) != 0 || ErrorFactor(1, 0) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestMissingColumnErrors(t *testing.T) {
	q := skewedQuery(t, 0)
	q.Joins[0].Left.Column = "nope"
	if _, err := AVIJoinSelectivity(q, 0); err == nil {
		t.Error("missing column should error")
	}
	if _, err := TrueJoinSelectivity(q, 0, 100); err == nil {
		t.Error("missing column should error")
	}
	if _, err := SampledJoinSelectivity(q, 0, 100); err == nil {
		t.Error("missing column should error")
	}
}
