// Package estimate implements the selectivity estimation substrate whose
// failure modes motivate the whole paper: the textbook NDV-based (AVI)
// estimates a traditional optimizer derives from catalog statistics,
// equi-depth histograms, and sampling-based estimation over the synthetic
// row generators. On uniform data all three agree with ground truth; on
// skewed data the statistics-only estimates err systematically — the
// "significantly in error" selectivities of the paper's introduction —
// while the robust algorithms remain indifferent (their guarantees are
// selectivity-free).
package estimate

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/query"
	"repro/internal/rowexec"
)

// AVIJoinSelectivity returns the classic statistics-only estimate for an
// equi-join: 1/max(NDV_l, NDV_r) — what the cost model (and the native
// optimizer) assumes.
func AVIJoinSelectivity(q *query.Query, joinID int) (float64, error) {
	j := q.Joins[joinID]
	lc, ok := q.Relations[j.LeftRel].Table.Column(j.Left.Column)
	if !ok {
		return 0, fmt.Errorf("estimate: missing column %v", j.Left)
	}
	rc, ok := q.Relations[j.RightRel].Table.Column(j.Right.Column)
	if !ok {
		return 0, fmt.Errorf("estimate: missing column %v", j.Right)
	}
	m := lc.Distinct
	if rc.Distinct > m {
		m = rc.Distinct
	}
	return 1 / float64(m), nil
}

// TrueJoinSelectivity computes the ground-truth match probability of an
// equi-join over the synthetic generators: P(l = r) = Σ_v pL(v)·pR(v),
// evaluated empirically over sampleRows draws per side. Deterministic for
// a given sample size.
func TrueJoinSelectivity(q *query.Query, joinID int, sampleRows int64) (float64, error) {
	j := q.Joins[joinID]
	lc, ok := q.Relations[j.LeftRel].Table.Column(j.Left.Column)
	if !ok {
		return 0, fmt.Errorf("estimate: missing column %v", j.Left)
	}
	rc, ok := q.Relations[j.RightRel].Table.Column(j.Right.Column)
	if !ok {
		return 0, fmt.Errorf("estimate: missing column %v", j.Right)
	}
	pl := valueDistribution(lc, sampleRows)
	pr := valueDistribution(rc, sampleRows)
	sel := 0.0
	for v, p := range pl {
		sel += p * pr[v]
	}
	return sel, nil
}

// valueDistribution empirically measures the generator's value frequencies.
func valueDistribution(col catalog.Column, rows int64) map[rowexec.Value]float64 {
	counts := map[rowexec.Value]int64{}
	for r := int64(0); r < rows; r++ {
		counts[rowexec.ColumnValue(col, r)]++
	}
	out := make(map[rowexec.Value]float64, len(counts))
	for v, c := range counts {
		out[v] = float64(c) / float64(rows)
	}
	return out
}

// SampledJoinSelectivity estimates the join selectivity by joining two
// row samples — what a sampling-based estimator (Rio-style) would observe.
// The sample offset decorrelates it from TrueJoinSelectivity's sweep.
func SampledJoinSelectivity(q *query.Query, joinID int, sampleRows int64) (float64, error) {
	j := q.Joins[joinID]
	lc, ok := q.Relations[j.LeftRel].Table.Column(j.Left.Column)
	if !ok {
		return 0, fmt.Errorf("estimate: missing column %v", j.Left)
	}
	rc, ok := q.Relations[j.RightRel].Table.Column(j.Right.Column)
	if !ok {
		return 0, fmt.Errorf("estimate: missing column %v", j.Right)
	}
	const offset = 1 << 20
	lvals := map[rowexec.Value]int64{}
	for r := int64(0); r < sampleRows; r++ {
		lvals[rowexec.ColumnValue(lc, offset+r)]++
	}
	matches := int64(0)
	for r := int64(0); r < sampleRows; r++ {
		matches += lvals[rowexec.ColumnValue(rc, 2*offset+r)]
	}
	return float64(matches) / (float64(sampleRows) * float64(sampleRows)), nil
}

// Histogram is an equi-depth histogram over a column's synthetic values.
type Histogram struct {
	// Bounds are the bucket upper bounds (inclusive), ascending.
	Bounds []rowexec.Value
	// Depth is the per-bucket row count (equi-depth).
	Depth int64
	// Total is the number of rows summarized.
	Total int64

	col catalog.Column
}

// BuildHistogram samples the column's generator and builds an equi-depth
// histogram with the given number of buckets.
func BuildHistogram(col catalog.Column, rows int64, buckets int) (*Histogram, error) {
	if buckets < 1 || rows < int64(buckets) {
		return nil, fmt.Errorf("estimate: need rows >= buckets >= 1, got %d/%d", rows, buckets)
	}
	vals := make([]rowexec.Value, rows)
	for r := int64(0); r < rows; r++ {
		vals[r] = rowexec.ColumnValue(col, r)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	h := &Histogram{Total: rows, Depth: rows / int64(buckets), col: col}
	for b := 1; b <= buckets; b++ {
		idx := int64(b)*rows/int64(buckets) - 1
		h.Bounds = append(h.Bounds, vals[idx])
	}
	return h, nil
}

// SelectivityLE estimates P(value <= v) from the histogram, with linear
// interpolation inside the covering bucket. v is in raw generator-domain
// units (1..NDV).
func (h *Histogram) SelectivityLE(v rowexec.Value) float64 {
	lo := rowexec.Value(1)
	covered := int64(0)
	for _, hi := range h.Bounds {
		if v >= hi {
			covered += h.Depth
			lo = hi
			continue
		}
		// Interpolate within [lo, hi].
		span := float64(hi - lo)
		if span <= 0 {
			span = 1
		}
		frac := float64(v-lo) / span
		if frac < 0 {
			frac = 0
		}
		covered += int64(frac * float64(h.Depth))
		break
	}
	sel := float64(covered) / float64(h.Total)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// UniformSelectivityLE is the statistics-only counterpart: assumes values
// uniform over 1..NDV.
func UniformSelectivityLE(col catalog.Column, v rowexec.Value) float64 {
	if v < 1 {
		return 0
	}
	if v >= col.Distinct {
		return 1
	}
	return float64(v) / float64(col.Distinct)
}

// ErrorFactor returns the multiplicative estimation error max(t/e, e/t):
// 1 means exact; the paper's motivating blowups correspond to factors in
// the hundreds or more.
func ErrorFactor(truth, est float64) float64 {
	if truth <= 0 || est <= 0 {
		return 0
	}
	if truth > est {
		return truth / est
	}
	return est / truth
}
