// Package workload defines the benchmark query suite of the paper's
// evaluation (Sec 6.1): SPJ analogues of TPC-DS queries with 2–6 error-
// prone join predicates spanning chain, star and branch join geometries,
// plus a Join Order Benchmark analogue (Sec 6.5). Each Spec carries the
// query text, the epp designation, and the recommended ESS grid for its
// dimensionality.
package workload

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/query"
	"repro/internal/sqlmini"
)

// Spec is one benchmark query with its experimental configuration.
type Spec struct {
	// Name follows the paper's xD_Qz nomenclature (e.g. "4D_Q91").
	Name string
	// D is the number of error-prone predicates.
	D int
	// Catalog names the backing catalog: "tpcds" or "imdb".
	Catalog string
	// SQL is the query text in the sqlmini dialect.
	SQL string
	// EPPs lists the error-prone join predicates, in dimension order.
	EPPs []string
	// GridRes is the recommended per-dimension grid resolution (chosen so
	// grid size stays laptop-scale as D grows).
	GridRes int
	// GridLo is the smallest selectivity of the grid.
	GridLo float64
}

// Build parses and binds the spec against the catalog, marking its epps.
func (sp Spec) Build(cat *catalog.Catalog) (*query.Query, error) {
	q, err := sqlmini.Parse(cat, sp.SQL)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", sp.Name, err)
	}
	q.Name = sp.Name
	if err := q.MarkEPPs(sp.EPPs...); err != nil {
		return nil, fmt.Errorf("workload %s: %w", sp.Name, err)
	}
	return q, nil
}

// defaultRes maps dimensionality to the recommended grid resolution.
func defaultRes(d int) int {
	switch d {
	case 1:
		return 64
	case 2:
		return 24
	case 3:
		return 12
	case 4:
		return 8
	case 5:
		return 6
	default:
		return 5
	}
}

const gridLo = 1e-6

func spec(name string, d int, sql string, epps ...string) Spec {
	return Spec{
		Name: name, D: d, Catalog: "tpcds", SQL: sql, EPPs: epps,
		GridRes: defaultRes(d), GridLo: gridLo,
	}
}

// q91SQL is the TPC-DS Query 91 analogue (catalog returns routed through
// call centers, with the customer demographic dimensions): a branch-shaped
// seven-relation join.
const q91SQL = `
SELECT *
FROM call_center cc, catalog_returns cr, date_dim d, customer c,
     customer_address ca, customer_demographics cd, household_demographics hd
WHERE cr.cr_call_center_sk = cc.cc_call_center_sk
  AND cr.cr_returned_date_sk = d.d_date_sk
  AND cr.cr_returning_customer_sk = c.c_customer_sk
  AND c.c_current_cdemo_sk = cd.cd_demo_sk
  AND c.c_current_hdemo_sk = hd.hd_demo_sk
  AND c.c_current_addr_sk = ca.ca_address_sk
  AND d.d_year = 1998 AND d.d_moy = 11
  AND hd.hd_buy_potential = 1
  AND cd.cd_marital_status = 2
  AND ca.ca_gmt_offset = -7`

// q91EPPs lists Q91's join predicates in the order dimensions are added as
// D grows from 2 to 6 (the paper's Fig. 9 experiment).
var q91EPPs = []string{
	"cr.cr_returned_date_sk = d.d_date_sk",   // X of the paper's Fig. 7
	"c.c_current_addr_sk = ca.ca_address_sk", // Y of the paper's Fig. 7
	"cr.cr_returning_customer_sk = c.c_customer_sk",
	"c.c_current_cdemo_sk = cd.cd_demo_sk",
	"c.c_current_hdemo_sk = hd.hd_demo_sk",
	"cr.cr_call_center_sk = cc.cc_call_center_sk",
}

// Q91 returns the Q91 analogue with the first d join predicates error-prone
// (2 <= d <= 6).
func Q91(d int) Spec {
	if d < 2 || d > 6 {
		panic(fmt.Sprintf("workload: Q91 supports 2..6 epps, got %d", d))
	}
	return spec(fmt.Sprintf("%dD_Q91", d), d, q91SQL, q91EPPs[:d]...)
}

// TPCDSQueries returns the full evaluation suite of Fig. 8/10/11/13.
func TPCDSQueries() []Spec {
	return []Spec{
		// 3D_Q15: catalog sales shipped to customers by address and date.
		spec("3D_Q15", 3, `
			SELECT *
			FROM catalog_sales cs, customer c, customer_address ca, date_dim d
			WHERE cs.cs_bill_customer_sk = c.c_customer_sk
			  AND c.c_current_addr_sk = ca.ca_address_sk
			  AND cs.cs_sold_date_sk = d.d_date_sk
			  AND d.d_qoy = 1 AND d.d_year = 2001`,
			"cs.cs_bill_customer_sk = c.c_customer_sk",
			"c.c_current_addr_sk = ca.ca_address_sk",
			"cs.cs_sold_date_sk = d.d_date_sk",
		),
		// 3D_Q96: store sales by household demographics, time of day and
		// store.
		spec("3D_Q96", 3, `
			SELECT *
			FROM store_sales ss, household_demographics hd, time_dim t, store s
			WHERE ss.ss_hdemo_sk = hd.hd_demo_sk
			  AND ss.ss_sold_time_sk = t.t_time_sk
			  AND ss.ss_store_sk = s.s_store_sk
			  AND t.t_hour = 20 AND hd.hd_dep_count = 7`,
			"ss.ss_hdemo_sk = hd.hd_demo_sk",
			"ss.ss_sold_time_sk = t.t_time_sk",
			"ss.ss_store_sk = s.s_store_sk",
		),
		// 4D_Q7: store sales star over demographics, date, item, promotion.
		spec("4D_Q7", 4, `
			SELECT *
			FROM store_sales ss, customer_demographics cd, date_dim d, item i, promotion p
			WHERE ss.ss_cdemo_sk = cd.cd_demo_sk
			  AND ss.ss_sold_date_sk = d.d_date_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND ss.ss_promo_sk = p.p_promo_sk
			  AND cd.cd_gender = 1 AND cd.cd_marital_status = 2
			  AND d.d_year = 2000`,
			"ss.ss_cdemo_sk = cd.cd_demo_sk",
			"ss.ss_sold_date_sk = d.d_date_sk",
			"ss.ss_item_sk = i.i_item_sk",
			"ss.ss_promo_sk = p.p_promo_sk",
		),
		// 4D_Q26: the catalog-side mirror of Q7 (the paper's Fig. 4 plan).
		spec("4D_Q26", 4, `
			SELECT *
			FROM catalog_sales cs, customer_demographics cd, date_dim d, item i, promotion p
			WHERE cs.cs_bill_cdemo_sk = cd.cd_demo_sk
			  AND cs.cs_sold_date_sk = d.d_date_sk
			  AND cs.cs_item_sk = i.i_item_sk
			  AND cs.cs_promo_sk = p.p_promo_sk
			  AND cd.cd_gender = 2 AND cd.cd_education_status = 3
			  AND d.d_year = 2000`,
			"cs.cs_bill_cdemo_sk = cd.cd_demo_sk",
			"cs.cs_sold_date_sk = d.d_date_sk",
			"cs.cs_item_sk = i.i_item_sk",
			"cs.cs_promo_sk = p.p_promo_sk",
		),
		// 4D_Q27: store sales over demographics, date, store, item.
		spec("4D_Q27", 4, `
			SELECT *
			FROM store_sales ss, customer_demographics cd, date_dim d, store s, item i
			WHERE ss.ss_cdemo_sk = cd.cd_demo_sk
			  AND ss.ss_sold_date_sk = d.d_date_sk
			  AND ss.ss_store_sk = s.s_store_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND cd.cd_gender = 1 AND d.d_year = 2002 AND s.s_state = 3`,
			"ss.ss_cdemo_sk = cd.cd_demo_sk",
			"ss.ss_sold_date_sk = d.d_date_sk",
			"ss.ss_store_sk = s.s_store_sk",
			"ss.ss_item_sk = i.i_item_sk",
		),
		Q91(4),
		// 5D_Q19: store sales with brand/item, date, customer, address,
		// store.
		spec("5D_Q19", 5, `
			SELECT *
			FROM store_sales ss, date_dim d, item i, customer c, customer_address ca, store s
			WHERE ss.ss_sold_date_sk = d.d_date_sk
			  AND ss.ss_item_sk = i.i_item_sk
			  AND ss.ss_customer_sk = c.c_customer_sk
			  AND c.c_current_addr_sk = ca.ca_address_sk
			  AND ss.ss_store_sk = s.s_store_sk
			  AND i.i_manufact_id = 7 AND d.d_moy = 11 AND d.d_year = 1999`,
			"ss.ss_sold_date_sk = d.d_date_sk",
			"ss.ss_item_sk = i.i_item_sk",
			"ss.ss_customer_sk = c.c_customer_sk",
			"c.c_current_addr_sk = ca.ca_address_sk",
			"ss.ss_store_sk = s.s_store_sk",
		),
		// 5D_Q29: the multi-fact chain store_sales — store_returns —
		// catalog_sales with item, date and store dimensions.
		spec("5D_Q29", 5, `
			SELECT *
			FROM store_sales ss, store_returns sr, catalog_sales cs, date_dim d, item i, store s
			WHERE ss.ss_item_sk = i.i_item_sk
			  AND sr.sr_ticket_number = ss.ss_ticket_number
			  AND cs.cs_bill_customer_sk = sr.sr_customer_sk
			  AND ss.ss_sold_date_sk = d.d_date_sk
			  AND ss.ss_store_sk = s.s_store_sk
			  AND d.d_moy = 9 AND d.d_year = 1999`,
			"ss.ss_item_sk = i.i_item_sk",
			"sr.sr_ticket_number = ss.ss_ticket_number",
			"cs.cs_bill_customer_sk = sr.sr_customer_sk",
			"ss.ss_sold_date_sk = d.d_date_sk",
			"ss.ss_store_sk = s.s_store_sk",
		),
		// 5D_Q84: customer-centric chain over address, demographics,
		// household demographics and store returns.
		spec("5D_Q84", 5, `
			SELECT *
			FROM customer c, customer_address ca, customer_demographics cd,
			     household_demographics hd, store_returns sr, reason r
			WHERE c.c_current_addr_sk = ca.ca_address_sk
			  AND c.c_current_cdemo_sk = cd.cd_demo_sk
			  AND c.c_current_hdemo_sk = hd.hd_demo_sk
			  AND sr.sr_cdemo_sk = cd.cd_demo_sk
			  AND sr.sr_reason_sk = r.r_reason_sk
			  AND ca.ca_city = 192 AND hd.hd_income_band_sk = 8`,
			"c.c_current_addr_sk = ca.ca_address_sk",
			"c.c_current_cdemo_sk = cd.cd_demo_sk",
			"c.c_current_hdemo_sk = hd.hd_demo_sk",
			"sr.sr_cdemo_sk = cd.cd_demo_sk",
			"sr.sr_reason_sk = r.r_reason_sk",
		),
		// 6D_Q18: catalog sales star with customer branch.
		spec("6D_Q18", 6, `
			SELECT *
			FROM catalog_sales cs, customer_demographics cd, customer c,
			     customer_address ca, date_dim d, item i, household_demographics hd
			WHERE cs.cs_bill_cdemo_sk = cd.cd_demo_sk
			  AND cs.cs_bill_customer_sk = c.c_customer_sk
			  AND c.c_current_addr_sk = ca.ca_address_sk
			  AND cs.cs_sold_date_sk = d.d_date_sk
			  AND cs.cs_item_sk = i.i_item_sk
			  AND c.c_current_hdemo_sk = hd.hd_demo_sk
			  AND cd.cd_gender = 2 AND cd.cd_education_status = 5
			  AND d.d_year = 1998 AND c.c_birth_month = 1`,
			"cs.cs_bill_cdemo_sk = cd.cd_demo_sk",
			"cs.cs_bill_customer_sk = c.c_customer_sk",
			"c.c_current_addr_sk = ca.ca_address_sk",
			"cs.cs_sold_date_sk = d.d_date_sk",
			"cs.cs_item_sk = i.i_item_sk",
			"c.c_current_hdemo_sk = hd.hd_demo_sk",
		),
		Q91(6),
	}
}

// Q25 returns the TPC-DS Query 25 analogue the paper uses to illustrate
// PlanBouquet's platform dependence (Sec 1.1.3: "PlanBouquet's MSO
// guarantee of 24 under PostgreSQL shot up ... to 36 for a commercial
// engine"): the store_sales / store_returns / catalog_sales multi-fact
// chain with item and store dimensions, 4 epps.
func Q25() Spec {
	return spec("4D_Q25", 4, `
		SELECT *
		FROM store_sales ss, store_returns sr, catalog_sales cs, item i, store s, date_dim d
		WHERE ss.ss_item_sk = i.i_item_sk
		  AND sr.sr_ticket_number = ss.ss_ticket_number
		  AND cs.cs_bill_customer_sk = sr.sr_customer_sk
		  AND ss.ss_store_sk = s.s_store_sk
		  AND ss.ss_sold_date_sk = d.d_date_sk
		  AND d.d_moy = 4 AND d.d_year = 2000`,
		"ss.ss_item_sk = i.i_item_sk",
		"sr.sr_ticket_number = ss.ss_ticket_number",
		"cs.cs_bill_customer_sk = sr.sr_customer_sk",
		"ss.ss_store_sk = s.s_store_sk",
	)
}

// EQ returns the paper's motivating example query (Fig. 1): orders placed
// for cheap parts, over the TPC-H schema, with the two join predicates
// error-prone (the filter on p_retailprice is assumed reliably estimated).
func EQ() Spec {
	return Spec{
		Name: "2D_EQ", D: 2, Catalog: "tpch",
		SQL: `
			SELECT * FROM part p, lineitem l, orders o
			WHERE p.p_partkey = l.l_partkey
			  AND o.o_orderkey = l.l_orderkey
			  AND p.p_retailprice < 1000`,
		EPPs: []string{
			"p.p_partkey = l.l_partkey",
			"o.o_orderkey = l.l_orderkey",
		},
		GridRes: 24, GridLo: gridLo,
	}
}

// JOB1a returns the Join Order Benchmark Q1a analogue over the IMDB-shaped
// catalog (Sec 6.5). Its implicit cyclic predicate (mc.movie_id =
// mi_idx.movie_id) is omitted, matching the paper's work-around of shutting
// off the optimizer's automatic inclusion of implicit join predicates.
func JOB1a() Spec {
	return Spec{
		Name: "JOB_1a", D: 2, Catalog: "imdb",
		SQL: `
			SELECT *
			FROM company_type ct, info_type it, movie_companies mc,
			     movie_info_idx mi_idx, title t
			WHERE mc.company_type_id = ct.id
			  AND mc.movie_id = t.id
			  AND mi_idx.movie_id = t.id
			  AND mi_idx.info_type_id = it.id
			  AND ct.kind = 2 AND it.info = 112
			  AND t.production_year > 1950`,
		EPPs: []string{
			"mc.movie_id = t.id",
			"mi_idx.movie_id = t.id",
		},
		GridRes: 24, GridLo: gridLo,
	}
}

// ChaosFail returns a spec whose build always fails: the query references
// tables absent from every catalog, so binding errors out immediately. It is
// deliberately excluded from Names() and the daemon's query listing — it
// exists for resilience drills (cmd/replay's circuit-breaker phase) that
// need a session build to fail on demand against a real daemon.
func ChaosFail() Spec {
	return Spec{
		Name: "CHAOS_FAIL", D: 2, Catalog: "tpcds",
		SQL: `
			SELECT * FROM no_such_table x, also_missing y
			WHERE x.a = y.b`,
		EPPs:    []string{"x.a = y.b"},
		GridRes: 4, GridLo: gridLo,
	}
}

// ByName returns the suite query with the given name (including the Q91
// dimensional variants, JOB_1a, and the hidden CHAOS_FAIL drill spec).
func ByName(name string) (Spec, bool) {
	for _, sp := range TPCDSQueries() {
		if sp.Name == name {
			return sp, true
		}
	}
	for d := 2; d <= 6; d++ {
		if sp := Q91(d); sp.Name == name {
			return sp, true
		}
	}
	if sp := JOB1a(); sp.Name == name {
		return sp, true
	}
	if sp := EQ(); sp.Name == name {
		return sp, true
	}
	if sp := Q25(); sp.Name == name {
		return sp, true
	}
	if sp := ChaosFail(); sp.Name == name {
		return sp, true
	}
	return Spec{}, false
}

// Names returns the names of all suite queries in evaluation order.
func Names() []string {
	var out []string
	for _, sp := range TPCDSQueries() {
		out = append(out, sp.Name)
	}
	return out
}
