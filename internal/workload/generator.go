package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/catalog"
	"repro/internal/query"
)

// Random query generation, for property-based testing of the robustness
// guarantees: the structural bounds must hold for *any* SPJ query, not just
// the curated suite, so tests draw random acyclic join queries over a
// catalog and check the algorithms against them.

// GenOptions shapes random query generation.
type GenOptions struct {
	// Relations is the number of FROM entries (>= 2).
	Relations int
	// EPPs is the number of error-prone predicates (clamped to the number
	// of joins, which is Relations-1 for the generated trees).
	EPPs int
	// MaxFilters bounds the number of random filter predicates.
	MaxFilters int
}

// Random generates a random acyclic SPJ query over the catalog: a random
// spanning tree of table occurrences joined on randomly chosen columns,
// with random range filters, and a random subset of joins designated
// error-prone. The construction only requires columns to exist — join
// column compatibility is irrelevant to the cost machinery, which consumes
// selectivities, not values.
func Random(cat *catalog.Catalog, rng *rand.Rand, opt GenOptions) (*query.Query, error) {
	if opt.Relations < 2 {
		return nil, fmt.Errorf("workload: need at least 2 relations, got %d", opt.Relations)
	}
	tables := cat.Tables()
	if len(tables) == 0 {
		return nil, fmt.Errorf("workload: empty catalog")
	}
	q := &query.Query{Name: "random"}
	for i := 0; i < opt.Relations; i++ {
		t := tables[rng.Intn(len(tables))]
		q.Relations = append(q.Relations, query.Relation{
			Alias: fmt.Sprintf("r%d", i),
			Table: t,
		})
	}
	pickCol := func(rel int) string {
		cols := q.Relations[rel].Table.Columns
		return cols[rng.Intn(len(cols))].Name
	}
	// Spanning tree: relation i joins a random earlier relation.
	for i := 1; i < opt.Relations; i++ {
		j := rng.Intn(i)
		q.Joins = append(q.Joins, query.Join{
			ID:   i - 1,
			Left: query.ColumnRef{Alias: q.Relations[j].Alias, Column: pickCol(j)},
			Right: query.ColumnRef{
				Alias: q.Relations[i].Alias, Column: pickCol(i),
			},
		})
	}
	// Random range filters.
	nf := 0
	if opt.MaxFilters > 0 {
		nf = rng.Intn(opt.MaxFilters + 1)
	}
	for f := 0; f < nf; f++ {
		rel := rng.Intn(opt.Relations)
		col, ok := q.Relations[rel].Table.Column(pickCol(rel))
		if !ok {
			continue
		}
		span := col.Max - col.Min
		if span <= 0 {
			continue
		}
		cut := col.Min + rng.Float64()*span
		op := query.OpLt
		if rng.Intn(2) == 0 {
			op = query.OpGe
		}
		q.Filters = append(q.Filters, query.Filter{
			ID:  len(q.Filters),
			Col: query.ColumnRef{Alias: q.Relations[rel].Alias, Column: col.Name},
			Op:  op, Args: []float64{cut},
		})
	}
	// EPP designation: a random subset of joins, in random order.
	d := opt.EPPs
	if d > len(q.Joins) {
		d = len(q.Joins)
	}
	if d < 1 {
		d = 1
	}
	perm := rng.Perm(len(q.Joins))
	q.EPPs = append(q.EPPs, perm[:d]...)
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid query: %w", err)
	}
	q.Name = fmt.Sprintf("random_%dr_%dd", opt.Relations, d)
	return q, nil
}

// Describe renders a generated query's shape for test failure messages.
func Describe(q *query.Query) string {
	var b strings.Builder
	for i, r := range q.Relations {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", r.Alias, r.Table.Name)
	}
	b.WriteString(" | ")
	for i, j := range q.Joins {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(j.String())
	}
	fmt.Fprintf(&b, " | epps=%v", q.EPPs)
	return b.String()
}
