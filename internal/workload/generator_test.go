package workload

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/optimizer"
)

func TestRandomGeneratesValidQueries(t *testing.T) {
	cat := catalog.TPCDS(1)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		opt := GenOptions{
			Relations:  2 + rng.Intn(5),
			EPPs:       1 + rng.Intn(3),
			MaxFilters: 3,
		}
		q, err := Random(cat, rng, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(q.Relations) != opt.Relations {
			t.Errorf("trial %d: %d relations, want %d", trial, len(q.Relations), opt.Relations)
		}
		if len(q.Joins) != opt.Relations-1 {
			t.Errorf("trial %d: %d joins for a spanning tree of %d", trial, len(q.Joins), opt.Relations)
		}
		if !q.Connected() {
			t.Errorf("trial %d: disconnected: %s", trial, Describe(q))
		}
		// Every generated query must be optimizable.
		m, err := cost.NewModel(q, cost.PostgresLike())
		if err != nil {
			t.Fatalf("trial %d: model: %v (%s)", trial, err, Describe(q))
		}
		o, err := optimizer.New(m)
		if err != nil {
			t.Fatalf("trial %d: optimizer: %v", trial, err)
		}
		loc := make(cost.Location, q.D())
		for i := range loc {
			loc[i] = 1e-4
		}
		if p, c := o.Optimize(loc); p == nil || c <= 0 {
			t.Fatalf("trial %d: optimize failed (%s)", trial, Describe(q))
		}
	}
}

func TestRandomErrors(t *testing.T) {
	cat := catalog.TPCDS(1)
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(cat, rng, GenOptions{Relations: 1}); err == nil {
		t.Error("1 relation should error")
	}
	if _, err := Random(catalog.New("empty"), rng, GenOptions{Relations: 2}); err == nil {
		t.Error("empty catalog should error")
	}
}

func TestRandomEPPClamping(t *testing.T) {
	cat := catalog.TPCDS(1)
	rng := rand.New(rand.NewSource(2))
	q, err := Random(cat, rng, GenOptions{Relations: 3, EPPs: 99})
	if err != nil {
		t.Fatal(err)
	}
	if q.D() != 2 {
		t.Errorf("epps should clamp to join count 2, got %d", q.D())
	}
	q, err = Random(cat, rng, GenOptions{Relations: 3, EPPs: 0})
	if err != nil {
		t.Fatal(err)
	}
	if q.D() != 1 {
		t.Errorf("epps should floor at 1, got %d", q.D())
	}
}

func TestDescribe(t *testing.T) {
	cat := catalog.TPCDS(1)
	rng := rand.New(rand.NewSource(3))
	q, err := Random(cat, rng, GenOptions{Relations: 2, EPPs: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := Describe(q)
	if s == "" || len(s) < 10 {
		t.Errorf("Describe = %q", s)
	}
}
