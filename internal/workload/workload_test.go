package workload

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/optimizer"
)

func TestAllSuiteQueriesBuild(t *testing.T) {
	cat := catalog.TPCDS(100)
	for _, sp := range TPCDSQueries() {
		q, err := sp.Build(cat)
		if err != nil {
			t.Errorf("%s: %v", sp.Name, err)
			continue
		}
		if q.D() != sp.D {
			t.Errorf("%s: D = %d, want %d", sp.Name, q.D(), sp.D)
		}
		if sp.GridRes < 2 || sp.GridLo <= 0 {
			t.Errorf("%s: bad grid spec %d/%g", sp.Name, sp.GridRes, sp.GridLo)
		}
		// The query must be optimizable end-to-end.
		m, err := cost.NewModel(q, cost.PostgresLike())
		if err != nil {
			t.Errorf("%s: model: %v", sp.Name, err)
			continue
		}
		o, err := optimizer.New(m)
		if err != nil {
			t.Errorf("%s: optimizer: %v", sp.Name, err)
			continue
		}
		loc := make(cost.Location, q.D())
		for d := range loc {
			loc[d] = 1e-4
		}
		p, c := o.Optimize(loc)
		if p == nil || c <= 0 {
			t.Errorf("%s: optimize produced %v/%g", sp.Name, p, c)
		}
	}
}

func TestSuiteCoversPaperDimensionalities(t *testing.T) {
	byD := map[int]int{}
	for _, sp := range TPCDSQueries() {
		byD[sp.D]++
	}
	for d := 3; d <= 6; d++ {
		if byD[d] == 0 {
			t.Errorf("no %dD query in the suite", d)
		}
	}
	if len(TPCDSQueries()) < 11 {
		t.Errorf("suite has %d queries, paper evaluates ~11", len(TPCDSQueries()))
	}
}

func TestQ91Dimensions(t *testing.T) {
	cat := catalog.TPCDS(100)
	for d := 2; d <= 6; d++ {
		sp := Q91(d)
		q, err := sp.Build(cat)
		if err != nil {
			t.Fatalf("Q91(%d): %v", d, err)
		}
		if q.D() != d {
			t.Errorf("Q91(%d).D = %d", d, q.D())
		}
	}
	// Growing D must only add epps, never change the earlier ones.
	for d := 3; d <= 6; d++ {
		lo, hi := Q91(d-1), Q91(d)
		for i := 0; i < d-1; i++ {
			if lo.EPPs[i] != hi.EPPs[i] {
				t.Errorf("Q91 epp %d changes between D=%d and D=%d", i, d-1, d)
			}
		}
	}
}

func TestQ91PanicsOutOfRange(t *testing.T) {
	for _, d := range []int{1, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Q91(%d) should panic", d)
				}
			}()
			Q91(d)
		}()
	}
}

func TestJOB1aBuilds(t *testing.T) {
	sp := JOB1a()
	q, err := sp.Build(catalog.IMDB())
	if err != nil {
		t.Fatalf("JOB1a: %v", err)
	}
	if q.D() != 2 {
		t.Errorf("JOB1a D = %d", q.D())
	}
	if sp.Catalog != "imdb" {
		t.Errorf("JOB1a catalog = %q", sp.Catalog)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"4D_Q91", "3D_Q96", "2D_Q91", "JOB_1a"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("9D_Q0"); ok {
		t.Error("ByName(9D_Q0) should not resolve")
	}
}

func TestNamesMatchSuite(t *testing.T) {
	names := Names()
	suite := TPCDSQueries()
	if len(names) != len(suite) {
		t.Fatalf("Names len %d != suite len %d", len(names), len(suite))
	}
	for i, sp := range suite {
		if names[i] != sp.Name {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], sp.Name)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cat := catalog.TPCDS(1)
	bad := Spec{Name: "bad", SQL: "SELECT * FROM nothere", EPPs: nil}
	if _, err := bad.Build(cat); err == nil {
		t.Error("Build of invalid SQL should fail")
	}
	bad2 := Spec{
		Name: "bad2",
		SQL:  "SELECT * FROM store s, store_sales ss WHERE ss.ss_store_sk = s.s_store_sk",
		EPPs: []string{"nope.x = y.z"},
	}
	if _, err := bad2.Build(cat); err == nil {
		t.Error("Build with unknown epp should fail")
	}
}

func TestChaosFailIsHiddenAndFails(t *testing.T) {
	sp, ok := ByName("CHAOS_FAIL")
	if !ok {
		t.Fatal("ByName(CHAOS_FAIL) should resolve (the replay drill depends on it)")
	}
	if _, err := sp.Build(catalog.TPCDS(1)); err == nil {
		t.Error("CHAOS_FAIL build should fail — it exists to trip the breaker")
	}
	for _, name := range Names() {
		if name == "CHAOS_FAIL" {
			t.Error("CHAOS_FAIL leaked into Names(); it must stay off the public listing")
		}
	}
}

func TestEQBuilds(t *testing.T) {
	sp := EQ()
	q, err := sp.Build(catalog.TPCH(1))
	if err != nil {
		t.Fatalf("EQ: %v", err)
	}
	if q.D() != 2 {
		t.Errorf("EQ D = %d", q.D())
	}
	if sp.Catalog != "tpch" {
		t.Errorf("EQ catalog = %q", sp.Catalog)
	}
	if _, ok := ByName("2D_EQ"); !ok {
		t.Error("ByName(2D_EQ) should resolve")
	}
	m, err := cost.NewModel(q, cost.PostgresLike())
	if err != nil {
		t.Fatal(err)
	}
	o, err := optimizer.New(m)
	if err != nil {
		t.Fatal(err)
	}
	if p, c := o.Optimize(cost.Location{1e-5, 1e-6}); p == nil || c <= 0 {
		t.Error("EQ does not optimize")
	}
}
