package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// scrape fetches /v1/metrics and parses the exposition, validating the
// format (HELP/TYPE lines, cumulative histogram buckets) as a side effect.
func scrape(t *testing.T, baseURL string) map[string]*telemetry.ParsedFamily {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	fams, err := telemetry.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return fams
}

// sampleSum totals every sample of a family with the given sample name
// (""= the family's base name) whose labels contain all the key=value pairs.
func sampleSum(f *telemetry.ParsedFamily, name string, match map[string]string) float64 {
	if f == nil {
		return 0
	}
	if name == "" {
		name = f.Name
	}
	total := 0.0
	for _, s := range f.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += s.Value
		}
	}
	return total
}

func TestMetricsEndpointExposition(t *testing.T) {
	ts := testServer(t)

	// Traffic on both mounts: the /v1 route and its deprecated alias.
	for _, path := range []string{"/v1/healthz", "/healthz", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	fams := scrape(t, ts.URL)
	for _, name := range []string{
		"rqp_requests_total", "rqp_request_duration_seconds",
		"rqp_deprecated_requests_total", "rqp_runs_total",
		"rqp_suboptimality", "rqp_sessions",
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("exposition missing %s", name)
		}
	}
	if got := sampleSum(fams["rqp_requests_total"], "", map[string]string{"route": "GET /v1/healthz", "status": "2xx"}); got < 1 {
		t.Errorf("rqp_requests_total for GET /v1/healthz = %g, want >= 1", got)
	}
	if got := sampleSum(fams["rqp_deprecated_requests_total"], "", map[string]string{"route": "GET /healthz"}); got != 2 {
		t.Errorf("rqp_deprecated_requests_total for GET /healthz = %g, want 2", got)
	}
	// The latency histogram saw the healthz requests.
	if got := sampleSum(fams["rqp_request_duration_seconds"], "rqp_request_duration_seconds_count",
		map[string]string{"route": "GET /v1/healthz"}); got < 1 {
		t.Errorf("rqp_request_duration_seconds_count for GET /v1/healthz = %g, want >= 1", got)
	}
}

func TestRunAndSweepPopulateRunMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real session")
	}
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})

	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run",
		map[string]any{"algorithm": "spillbound", "truth": []float64{0.04, 0.1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %v", resp.StatusCode, body)
	}
	// The run response carries the typed event stream.
	events, ok := body["events"].([]any)
	if !ok || len(events) == 0 {
		t.Fatalf("run response missing events: %v", body["events"])
	}
	first, _ := events[0].(map[string]any)
	if first["kind"] != "contour_enter" {
		t.Errorf("first event = %v, want contour_enter", first)
	}

	sweepResp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/sweep?algorithm=native&max=16")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sweepResp.Body)
	sweepResp.Body.Close()
	if sweepResp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", sweepResp.StatusCode)
	}

	fams := scrape(t, ts.URL)
	if got := sampleSum(fams["rqp_runs_total"], "", map[string]string{"algorithm": "spillbound", "outcome": "ok"}); got != 1 {
		t.Errorf("rqp_runs_total{spillbound,ok} = %g, want 1", got)
	}
	if got := sampleSum(fams["rqp_runs_total"], "", map[string]string{"algorithm": "native", "outcome": "sweep"}); got < 1 {
		t.Errorf("rqp_runs_total{native,sweep} = %g, want >= 1", got)
	}
	if got := sampleSum(fams["rqp_suboptimality"], "rqp_suboptimality_count", nil); got < 3 {
		t.Errorf("rqp_suboptimality observations = %g, want >= 3 (run + sweep MSO/ASO)", got)
	}
	if got := sampleSum(fams["rqp_session_builds_total"], "", map[string]string{"result": "ok"}); got != 1 {
		t.Errorf("rqp_session_builds_total{ok} = %g, want 1", got)
	}
	if got := sampleSum(fams["rqp_build_cells_optimized_total"], "", nil); got <= 0 {
		t.Errorf("rqp_build_cells_optimized_total = %g, want > 0", got)
	}
}

func TestDebugStatsSnapshot(t *testing.T) {
	ts := testServer(t)
	var stats struct {
		Runtime struct {
			Goroutines int `json:"goroutines"`
			GOMAXPROCS int `json:"gomaxprocs"`
		} `json:"runtime"`
		Metrics []struct {
			Name string `json:"name"`
			Type string `json:"type"`
		} `json:"metrics"`
	}
	resp := getJSON(t, ts.URL+"/v1/debug/stats", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/stats status %d", resp.StatusCode)
	}
	if stats.Runtime.Goroutines <= 0 || stats.Runtime.GOMAXPROCS <= 0 {
		t.Errorf("runtime stats empty: %+v", stats.Runtime)
	}
	found := false
	for _, m := range stats.Metrics {
		if m.Name == "rqp_requests_total" && m.Type == "counter" {
			found = true
		}
	}
	if !found {
		t.Error("debug/stats missing rqp_requests_total family")
	}
}

// TestMetricsRegistriesAreIsolated guards the per-Server registry: two
// servers must not share counters (a process-global registry would double
// count and panic on re-registration).
func TestMetricsRegistriesAreIsolated(t *testing.T) {
	a := httptest.NewServer(New().Handler())
	defer a.Close()
	b := httptest.NewServer(New().Handler())
	defer b.Close()

	resp, err := http.Get(a.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	fams := scrape(t, b.URL)
	if got := sampleSum(fams["rqp_requests_total"], "", map[string]string{"route": "GET /v1/healthz"}); got != 0 {
		t.Errorf("server B saw server A's traffic: %g", got)
	}
}
