package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	repro "repro"
)

// atlasDefaultPerRegime keeps the default atlas request bounded: one scenario
// per regime exercises every guardrail class without multiplying the sweep.
const atlasDefaultPerRegime = 1

// handleAtlas serves the per-regime robustness atlas of a ready 2D session:
//
//	GET /v1/atlas?session=s1[&strategies=planbouquet,spillbound][&seed=1][&perRegime=1][&max=0][&format=svg]
//
// The sweep runs every suite scenario at (a sample of) every ESS cell per
// requested algorithm — it is admitted through the same overload limiter and
// session bulkhead as run/sweep requests. format=svg renders the heatmap
// lattice with guard overlays; the default is the JSON render data.
func (s *Server) handleAtlas(w http.ResponseWriter, r *http.Request) {
	// Brownout stage 2 sheds the expensive read surface; the atlas sweep is
	// the most expensive read the API offers.
	if s.Stage() >= 2 {
		s.shedBrownout(w, "run")
		return
	}
	q := r.URL.Query()
	id := q.Get("session")
	if id == "" {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("missing session parameter"))
		return
	}
	s.mu.Lock()
	e, ok := s.sessions[id]
	if ok {
		e.lastUsed = time.Now()
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("no session %q", id))
		return
	}
	sess, ok := s.ready(w, e)
	if !ok {
		return
	}
	if e.d != 2 {
		s.writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Errorf("the robustness atlas needs a 2D session; %s is %dD", e.id, e.d))
		return
	}

	// Strategy rows: the "strategies" parameter is canonical; "algorithms"
	// is its deprecated spelling (counted like the run/sweep legacy field).
	// Empty means the library's default row set (discovery trio + every
	// registered selection strategy).
	spec, legacyParam := q.Get("strategies"), false
	if spec == "" {
		if spec = q.Get("algorithms"); spec != "" {
			legacyParam = true
		}
	}
	var algos []repro.Algorithm
	if spec != "" {
		if legacyParam {
			s.metrics.deprecated.With("field:algorithms").Inc()
		}
		for _, name := range strings.Split(spec, ",") {
			a, ok := s.resolveStrategy(w, strings.TrimSpace(name), "")
			if !ok {
				return
			}
			algos = append(algos, a)
		}
	}
	seed, err := intParam(q.Get("seed"), 1)
	if err != nil || seed < 1 {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad seed %q", q.Get("seed")))
		return
	}
	perRegime, err := intParam(q.Get("perRegime"), atlasDefaultPerRegime)
	if err != nil || perRegime < 1 || perRegime > 16 {
		s.writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Errorf("bad perRegime %q (want 1..16)", q.Get("perRegime")))
		return
	}
	max, err := intParam(q.Get("max"), 0)
	if err != nil || max < 0 {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad max %q", q.Get("max")))
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "svg" {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad format %q (want json or svg)", format))
		return
	}

	release, admitted := s.admitRun(w, e)
	if !admitted {
		return
	}
	atlas, err := sess.Atlas(r.Context(), algos, repro.ScenarioSuite(int64(seed), perRegime), max)
	if err != nil {
		status, code := runErrorStatus(err)
		release(status < http.StatusInternalServerError)
		s.writeError(w, status, code, err)
		return
	}
	release(true)
	// The session was built through the SQL parse path, which leaves the
	// query unnamed; label the atlas with the benchmark name clients know.
	atlas.Query = e.query
	switch format {
	case "svg":
		w.Header().Set("Content-Type", "image/svg+xml")
		_, _ = w.Write([]byte(atlas.SVG()))
	default:
		b, err := atlas.JSON()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	}
}

// intParam parses an optional integer query parameter.
func intParam(v string, def int) (int, error) {
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}
