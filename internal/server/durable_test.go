package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/workload"
)

// awaitRunResumed polls the durable run resource until it reports a
// completed, resumed run (deadline-bounded; recovery runs in the background
// after the session build).
func awaitRunResumed(t *testing.T, baseURL, sid, rid string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last map[string]any
	for time.Now().Before(deadline) {
		var body map[string]any
		resp := getJSON(t, baseURL+"/v1/sessions/"+sid+"/runs/"+rid, &body)
		if resp.StatusCode == http.StatusOK {
			last = body
			if body["resumed"] == true && body["status"] != "failed" && body["status"] != "interrupted" {
				return body
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never resumed; last seen %v", rid, last)
	return nil
}

// TestDurableServerRecovery is the end-to-end restart drill: a durable
// server hosts a session with one completed run, the process "dies" leaving
// a second run crashed mid-contour, and a fresh server over the same data
// directory must recover the session without re-running the optimizer
// enumeration, resume the interrupted run from its checkpoint, and serve
// both run resources over /v1.
func TestDurableServerRecovery(t *testing.T) {
	dir := t.TempDir()

	srv1 := NewWithConfig(Config{DataDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	resp, created := postJSON(t, ts1.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create status %d: %v", resp.StatusCode, created)
	}
	sid := created["id"].(string)
	awaitReady(t, ts1.URL, sid)

	resp, run := postJSON(t, ts1.URL+"/v1/sessions/"+sid+"/run",
		map[string]any{"algorithm": "spillbound", "truth": []float64{0.04, 0.1}, "durable": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("durable run status %d: %v", resp.StatusCode, run)
	}
	if run["runId"] != "r1" || run["resumed"] == true {
		t.Fatalf("durable run response: %v", run)
	}
	baseCost := run["totalCost"].(float64)
	ts1.Close()
	srv1.Close()

	// Simulate the process dying mid-run: attach to the session's directory
	// with the library (rehydrating the ESS the server persisted) and kill a
	// run at its second contour checkpoint. The torn run state stays on disk.
	opts := repro.BenchmarkOptions()
	opts.GridRes = 6
	opts.DataDir = filepath.Join(dir, sid)
	sess, err := repro.NewBenchmarkSession(repro.EQBenchmark(), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.RunDurableWithFaults(context.Background(), repro.SpillBound,
		repro.Location{0.04, 0.1}, "r2", &repro.FaultPlan{CrashAtCheckpoint: 2})
	if !repro.ErrRunCrashed(err) {
		t.Fatalf("want crash, got %v", err)
	}

	// Restart over the same data directory.
	srv2 := NewWithConfig(Config{DataDir: dir})
	t.Cleanup(srv2.Close)
	orig := buildSession
	buildSession = func(ctx context.Context, bq workload.Spec, o repro.Options) (*repro.Session, error) {
		// Recovery must rehydrate the persisted ESS, never re-enumerate.
		o.BuildProgress = func(done, total int) { t.Error("recovery re-ran the ESS build") }
		return orig(ctx, bq, o)
	}
	t.Cleanup(func() { buildSession = orig })
	if err := srv2.Recover(context.Background()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(ts2.Close)

	info := awaitReady(t, ts2.URL, sid)
	if info["query"] != "2D_EQ" {
		t.Errorf("recovered session query %v", info["query"])
	}
	resumed := awaitRunResumed(t, ts2.URL, sid, "r2")
	if cost := resumed["totalCost"].(float64); cost != baseCost {
		t.Errorf("resumed run cost %g, uninterrupted run cost %g", cost, baseCost)
	}

	// The earlier completed run survived the restart too.
	var r1 map[string]any
	if resp := getJSON(t, ts2.URL+"/v1/sessions/"+sid+"/runs/r1", &r1); resp.StatusCode != http.StatusOK {
		t.Fatalf("get r1 status %d: %v", resp.StatusCode, r1)
	}
	if r1["status"] != "completed" || r1["resumed"] == true {
		t.Errorf("r1 resource: %v", r1)
	}
	var list []map[string]any
	if resp := getJSON(t, ts2.URL+"/v1/sessions/"+sid+"/runs", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list runs status %d", resp.StatusCode)
	}
	if len(list) != 2 || list[0]["runId"] != "r1" || list[1]["runId"] != "r2" {
		t.Errorf("run list: %v", list)
	}

	// A new durable run on the recovered session must not collide with the
	// recovered IDs.
	resp, run3 := postJSON(t, ts2.URL+"/v1/sessions/"+sid+"/run",
		map[string]any{"algorithm": "planbouquet", "truth": []float64{0.04, 0.1}, "durable": true})
	if resp.StatusCode != http.StatusOK || run3["runId"] != "r3" {
		t.Errorf("post-recovery run allocated %v (status %d)", run3["runId"], resp.StatusCode)
	}

	// The recovery counters are exposed on /v1/metrics.
	mresp, err := http.Get(ts2.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rqp_resumes_total 1", "rqp_checkpoints_total"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDurableRunNeedsDataDir proves durable runs and the run resources are
// cleanly rejected on a server without a data directory.
func TestDurableRunNeedsDataDir(t *testing.T) {
	ts := testServer(t)
	sid := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+sid+"/run",
		map[string]any{"algorithm": "spillbound", "truth": []float64{0.04, 0.1}, "durable": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("durable run without -data: status %d: %v", resp.StatusCode, body)
	}
	errEnvelope(t, body)
	var list any
	if resp := getJSON(t, ts.URL+"/v1/sessions/"+sid+"/runs", &list); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("runs listing without -data: status %d", resp.StatusCode)
	}
}

// TestOverloadResponsesCarryRetryAfter proves the 429 session-cap response
// advertises when to retry via the Retry-After header: the eviction cadence
// as the base, plus the deterministic per-request jitter that keeps
// synchronized clients from herding back on the same second.
func TestOverloadResponsesCarryRetryAfter(t *testing.T) {
	srv := NewWithConfig(Config{MaxSessions: 1, SessionTTL: time.Minute, EvictInterval: 10 * time.Second})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if resp, body := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first create status %d: %v", resp.StatusCode, body)
	}
	resp, body := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create status %d: %v", resp.StatusCode, body)
	}
	code, _ := errEnvelope(t, body)
	if code != codeTooManySessions {
		t.Errorf("code = %q", code)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	// Base 10 (the eviction cadence) + jitter in [0, 10/2+3).
	if secs < 10 || secs >= 18 {
		t.Errorf("Retry-After = %d, want the 10s eviction cadence + jitter in [10, 18)", secs)
	}
}

// postPinned issues a fleet-style pinned session create: the payload plus
// the X-Rqp-Fleet-Session header a fronting node stamps.
func postPinned(t *testing.T, baseURL, id, payload string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/sessions", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(FleetSessionHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestPinnedCreateClaimsSessionDirOnDisk: the in-memory duplicate check only
// covers one process, so with a shared fleet data dir the session directory
// itself is the cross-node claim — a pinned create must 409 when another
// node's directory already exists, and must not leave a half-registered
// session behind locally.
func TestPinnedCreateClaimsSessionDirOnDisk(t *testing.T) {
	dir := t.TempDir()
	srv := NewWithConfig(Config{DataDir: dir})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Another node (unknown to this process's registry) already claimed the
	// pinned ID on shared disk.
	if err := os.Mkdir(filepath.Join(dir, "ftaken"), 0o755); err != nil {
		t.Fatal(err)
	}
	resp := postPinned(t, ts.URL, "ftaken", `{"query":"2D_EQ","gridRes":4}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("create over a foreign on-disk claim: status %d, want 409", resp.StatusCode)
	}
	// The rejected create must not have registered the session locally.
	var probe map[string]any
	if got := getJSON(t, ts.URL+"/v1/sessions/ftaken", &probe); got.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected pinned create left a local session: status %d", got.StatusCode)
	}

	// A fresh pinned ID claims its directory and builds normally.
	resp = postPinned(t, ts.URL, "ffresh", `{"query":"2D_EQ","gridRes":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh pinned create: status %d", resp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "ffresh")); err != nil {
		t.Fatalf("accepted pinned create did not claim its directory: %v", err)
	}
	// Re-creating it collides — in memory this time, same 409.
	if resp := postPinned(t, ts.URL, "ffresh", `{"query":"2D_EQ","gridRes":4}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate pinned create: status %d, want 409", resp.StatusCode)
	}
	awaitReady(t, ts.URL, "ffresh")
}
