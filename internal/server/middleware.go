package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/guard"
)

// maxBodyBytes bounds request bodies; every payload the API accepts is a
// few hundred bytes, so 1 MiB is generous while stopping memory abuse.
const maxBodyBytes = 1 << 20

// recoverMiddleware converts a panicking handler into a structured JSON 500
// instead of killing the connection (and, under http.Serve semantics, the
// goroutine with a stack dump only). The stack is logged server-side; the
// client sees a stable error shape.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// http.ErrAbortHandler is the sentinel for "client went
				// away"; re-panicking preserves net/http's handling.
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				log.Printf("server: panic in %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				s.writeError(w, http.StatusInternalServerError, codeInternal, fmt.Errorf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// timeoutMiddleware attaches a per-request deadline to the request context,
// so session runs and sweeps abort mid-discovery when the budget expires
// (the handlers pass r.Context() down into the library). Zero disables.
func timeoutMiddleware(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// limitBodyMiddleware caps request body size.
func limitBodyMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// Stable machine-readable error codes carried in the JSON error envelope.
const (
	codeBadRequest      = "bad_request"
	codeNotFound        = "not_found"
	codeSessionBuilding = "session_building"
	codeSessionFailed   = "session_failed"
	codeTooManySessions = "too_many_sessions"
	codeUnknownStrategy = "unknown_strategy"
	codeOverloaded      = "overloaded"
	codeTimeout         = "timeout"
	codeCanceled        = "canceled"
	codeInternal        = "internal"
)

// apiError is the uniform JSON error envelope body: every non-2xx response
// is {"error":{"code":..., "message":..., "traceId":...}} — the trace ID
// duplicates the Traceparent/X-Request-ID headers in-band, so clients that
// only log bodies still capture the correlation handle.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	TraceID string `json:"traceId,omitempty"`
}

// writeError emits the uniform error envelope. Overload responses — 429
// (session limit) and 5xx the client should back off from (503/504) — carry
// a Retry-After header; call sites with better knowledge may set it first
// and win: the eviction cadence behind a 429, the breaker's REMAINING
// cooldown behind a circuit-open 503, and a fleet proxy relaying a
// downstream shed forwards the downstream's value verbatim (the proxy
// copies response headers and never re-enters this function). Sites with no
// better estimate fall back to a value DERIVED from guard state — the
// breaker's remaining cooldown when the circuit is open, one second
// otherwise (limiter sheds clear in sub-second time) — rather than a
// hardcoded constant. Every value this function sets is jittered
// deterministically per request (guard.JitterRetryAfter seeded by the
// X-Request-ID the trace middleware stamps eagerly), so a burst of clients
// shed in the same instant de-synchronizes instead of thundering back on
// the same second. The trace ID is read back from the same header, which
// spares every call site from threading the request context through.
func (s *Server) writeError(w http.ResponseWriter, status int, code string, err error) {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		if w.Header().Get("Retry-After") == "" {
			s.setRetryAfter(w, s.retryAfterBase())
		}
	}
	writeJSON(w, status, map[string]apiError{"error": {
		Code: code, Message: err.Error(), TraceID: w.Header().Get("X-Request-ID"),
	}})
}

// retryAfterBase derives the generic Retry-After fallback from guard state:
// an open build breaker dominates (its remaining cooldown is the soonest
// the node plausibly accepts expensive work again); otherwise one second —
// AIMD limiter slots churn at request latency, so "retry shortly" is
// honest and the per-request jitter supplies the spread.
func (s *Server) retryAfterBase() int {
	if ra := s.breaker.RetryAfter(); ra > 0 {
		return cooldownSeconds(ra)
	}
	return 1
}

// setRetryAfter stamps a jittered Retry-After derived from base seconds,
// seeded by the request's trace identity for per-request determinism.
func (s *Server) setRetryAfter(w http.ResponseWriter, base int) {
	jittered := guard.JitterRetryAfter(w.Header().Get("X-Request-ID"), base)
	w.Header().Set("Retry-After", strconv.Itoa(jittered))
}

// runErrorStatus maps a session-layer error to an HTTP status and envelope
// code: an expired per-request deadline is a gateway timeout, a client
// cancellation is 499-like (we use 503 as the closest standard code),
// anything else is a bad request (validation) — the caller decides which
// bucket applies.
func runErrorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, codeTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, codeCanceled
	default:
		return http.StatusBadRequest, codeBadRequest
	}
}
