package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// maxBodyBytes bounds request bodies; every payload the API accepts is a
// few hundred bytes, so 1 MiB is generous while stopping memory abuse.
const maxBodyBytes = 1 << 20

// recoverMiddleware converts a panicking handler into a structured JSON 500
// instead of killing the connection (and, under http.Serve semantics, the
// goroutine with a stack dump only). The stack is logged server-side; the
// client sees a stable error shape.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				// http.ErrAbortHandler is the sentinel for "client went
				// away"; re-panicking preserves net/http's handling.
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				log.Printf("server: panic in %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// timeoutMiddleware attaches a per-request deadline to the request context,
// so session runs and sweeps abort mid-discovery when the budget expires
// (the handlers pass r.Context() down into the library). Zero disables.
func timeoutMiddleware(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// limitBodyMiddleware caps request body size.
func limitBodyMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// statusForRunError maps a session-layer error to an HTTP status: an
// expired per-request deadline is a gateway timeout, a client cancellation
// is 499-like (we use 503 as the closest standard code), anything else is a
// bad request (validation) — the caller decides which bucket applies.
func statusForRunError(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
