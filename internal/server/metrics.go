// Server-side process metrics: every instrument the HTTP layer populates,
// registered on one per-Server telemetry.Registry and exposed in the
// Prometheus text format at GET /v1/metrics (JSON twin: /v1/debug/stats).
// Instrumentation happens at route-registration time — each handler is
// wrapped with its route pattern — so the request path never does pattern
// lookups and the registry's atomic cells are the only shared state.

package server

import (
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// latencyBuckets spans sub-millisecond health checks to multi-second sweeps.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// subOptBuckets covers the sub-optimality range the paper cares about: 1
// (oracle-optimal) through SpillBound's D²+3D ceiling for the benchmark
// dimensionalities and beyond for degraded runs.
var subOptBuckets = []float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128}

// buildBuckets tracks ESS construction wall time in seconds.
var buildBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300}

// serverMetrics bundles the server's instruments around one registry.
type serverMetrics struct {
	reg *telemetry.Registry

	requests   *telemetry.CounterVec   // route, method, status
	latency    *telemetry.HistogramVec // route
	deprecated *telemetry.CounterVec   // route
	inflight   *telemetry.Gauge

	runs    *telemetry.CounterVec // algorithm, outcome
	retries *telemetry.Counter
	subOpt  *telemetry.Histogram
	maxSub  *telemetry.Gauge
	guard   *telemetry.CounterVec // verdict

	builds        *telemetry.CounterVec // result
	buildCells    *telemetry.Counter
	buildDuration *telemetry.Histogram

	checkpoints *telemetry.Counter
	resumes     *telemetry.Counter
	traceSpans  *telemetry.Counter

	inflightClass *telemetry.GaugeVec   // class (run, build)
	shed          *telemetry.CounterVec // class, reason
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		requests: reg.CounterVec("rqp_requests_total",
			"HTTP requests served, by route pattern, method and status class.",
			"route", "method", "status"),
		latency: reg.HistogramVec("rqp_request_duration_seconds",
			"HTTP request latency in seconds, by route pattern.",
			latencyBuckets, "route"),
		deprecated: reg.CounterVec("rqp_deprecated_requests_total",
			"Requests served via deprecated unversioned (pre-/v1) paths, by route.",
			"route"),
		inflight: reg.Gauge("rqp_requests_inflight",
			"HTTP requests currently being served."),
		runs: reg.CounterVec("rqp_runs_total",
			"Query processing runs, by algorithm and outcome (ok, degraded, error).",
			"algorithm", "outcome"),
		retries: reg.Counter("rqp_run_retries_total",
			"Execution-step retry attempts absorbed by the resilience layer."),
		subOpt: reg.Histogram("rqp_suboptimality",
			"Observed run sub-optimality (total cost over oracle-optimal cost, Eq. 3).",
			subOptBuckets),
		maxSub: reg.Gauge("rqp_suboptimality_max",
			"High-water sub-optimality observed since process start (empirical MSO)."),
		guard: reg.CounterVec("rqp_guard_interventions_total",
			"Runtime-guard interventions on served runs, by verdict (budget_abort, ess_escape).",
			"verdict"),
		builds: reg.CounterVec("rqp_session_builds_total",
			"Asynchronous ESS session builds, by result (ok, failed).",
			"result"),
		buildCells: reg.Counter("rqp_build_cells_optimized_total",
			"ESS grid cells optimized across all session builds."),
		buildDuration: reg.Histogram("rqp_session_build_duration_seconds",
			"Wall time of asynchronous ESS session builds in seconds.",
			buildBuckets),
		checkpoints: reg.Counter("rqp_checkpoints_total",
			"Durable run-state snapshots persisted at contour boundaries."),
		resumes: reg.Counter("rqp_resumes_total",
			"Durable runs resumed from a crash checkpoint after recovery."),
		traceSpans: reg.Counter("rqp_trace_spans_total",
			"Spans recorded into the in-memory trace store across all sampled traces."),
		inflightClass: reg.GaugeVec("rqp_inflight",
			"In-flight guarded work admitted by the overload limiters, by class (run, build).",
			"class"),
		shed: reg.CounterVec("rqp_shed_total",
			"Requests shed by overload control, by class (run, build) and reason (limiter, bulkhead, breaker, brownout).",
			"class", "reason"),
	}
	reg.GaugeFunc("rqp_sessions", "Live sessions in the registry.",
		func() float64 { return float64(s.SessionCount()) })
	reg.GaugeFunc("rqp_sessions_building", "Sessions whose ESS build is still in flight.",
		func() float64 { return float64(s.buildingCount()) })
	reg.GaugeFunc("rqp_breaker_state",
		"Session-build circuit breaker state: 0 closed, 1 open, 2 half-open.",
		func() float64 { return float64(s.breaker.State()) })
	reg.GaugeFunc("rqp_brownout_stage",
		"Staged brownout level: 0 normal, 1 no hedges/sampling, 2 shed expensive reads, 3 shed builds, 4 full shed.",
		func() float64 { return float64(s.Stage()) })
	// Process resource gauges, sampled at scrape time: the in-band signal
	// the overload story (AIMD limiters, sheds) can be correlated against.
	reg.GaugeFunc("rqp_goroutines", "Live goroutines, sampled at scrape time.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("rqp_heap_bytes", "Heap bytes in use (runtime.MemStats.HeapAlloc), sampled at scrape time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("rqp_sessions_active", "Ready (built, servable) sessions in the registry.",
		func() float64 { return float64(s.readyCount()) })
	// Pre-touch both classes so the families render on the first scrape even
	// before any guarded work arrives.
	m.inflightClass.With("run").Set(0)
	m.inflightClass.With("build").Set(0)
	return m
}

// setInflight mirrors a limiter's in-flight count into the class gauge.
func (m *serverMetrics) setInflight(class string, n int) {
	m.inflightClass.With(class).Set(float64(n))
}

// observeRun records one run outcome: the outcome-labeled counter, the
// retry count, and the sub-optimality distribution plus its high-water
// mark. traceID, when non-empty, becomes the landing bucket's exemplar, so
// an operator can jump from a moved rqp_suboptimality bucket straight to
// the span tree that moved it.
func (m *serverMetrics) observeRun(algorithm string, degraded bool, retries int, subOpt float64, traceID string) {
	outcome := "ok"
	if degraded {
		outcome = "degraded"
	}
	m.runs.With(algorithm, outcome).Inc()
	m.retries.Add(float64(retries))
	if subOpt > 0 {
		m.subOpt.ObserveTrace(subOpt, traceID)
		m.maxSub.SetMax(subOpt)
	}
}

// observeGuard counts a run's guard intervention (no-op for clean runs).
func (m *serverMetrics) observeGuard(verdict string) {
	if verdict != "" {
		m.guard.With(verdict).Inc()
	}
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with per-route metrics for the given route
// pattern (e.g. "POST /sessions/{id}/run"): request count by method/status,
// latency histogram, in-flight gauge.
func (m *serverMetrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inflight.Add(1)
		defer m.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		m.requests.With(route, r.Method, statusClass(status)).Inc()
		// The trace middleware runs outside the mux, so every instrumented
		// request carries a traceparent; the latency histogram links its
		// buckets to the traces that last landed in them.
		tp, _ := trace.FromContext(r.Context())
		m.latency.With(route).ObserveTrace(time.Since(start).Seconds(), tp.TraceID)
	}
}

// statusClass buckets a status code into its Prometheus-friendly class
// ("2xx", "4xx", ...), keeping the label cardinality constant.
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	}
	return "5xx"
}

// deprecationWarned dedupes the structured deprecation log line per route;
// the counter still advances on every request so the removal decision
// (ISSUE: "data-driven") sees real traffic volume.
var deprecationWarned sync.Map

// deprecate wraps a legacy unversioned route: counts every hit and logs a
// structured warning (once per route per process) pointing at the /v1 path.
func (m *serverMetrics) deprecate(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m.deprecated.With(route).Inc()
		if _, seen := deprecationWarned.LoadOrStore(route, true); !seen {
			_, path, _ := strings.Cut(route, " ")
			tp, _ := trace.FromContext(r.Context())
			log.Printf("server: deprecated=true route=%q path=%q replacement=%q requestId=%q msg=%q",
				route, r.URL.Path, "/v1"+path, tp.TraceID,
				"unversioned paths will be removed; migrate to /v1")
		}
		h(w, r)
	}
}

// handleMetrics serves the registry in the Prometheus text format, or —
// when the scraper negotiates Accept: application/openmetrics-text — in the
// OpenMetrics flavor that additionally carries histogram bucket exemplars
// linking to trace IDs.
func (m *serverMetrics) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = m.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = m.reg.WriteProm(w)
}

// handleDebugStats serves the JSON twin plus process runtime statistics.
func (m *serverMetrics) handleDebugStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.Snapshot(m.reg))
}
