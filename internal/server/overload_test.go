package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	repro "repro"
	"repro/internal/workload"
)

// overloadServer boots an httptest server around a configured *Server so
// tests can both drive HTTP and reach the admission internals directly.
func overloadServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewWithConfig(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// awaitStatus polls a session resource until it reaches the wanted lifecycle
// state.
func awaitStatus(t *testing.T, baseURL, id, want string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var info map[string]any
		if resp := getJSON(t, baseURL+"/v1/sessions/"+id, &info); resp.StatusCode != http.StatusOK {
			t.Fatalf("get session status %d: %v", resp.StatusCode, info)
		}
		if info["status"] == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("session %s never reached %q", id, want)
}

// TestRunShedByLimiter fills the shared run limiter directly and asserts the
// next HTTP run is shed with a 429 "overloaded" envelope, a Retry-After
// header, and a counted rqp_shed_total sample — then completes once the slot
// frees up.
func TestRunShedByLimiter(t *testing.T) {
	srv, ts := overloadServer(t, Config{MaxConcurrentRuns: 1})
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})

	if !srv.runLimiter.TryAcquire() {
		t.Fatal("could not pre-fill the run limiter")
	}
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429: %v", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != codeOverloaded {
		t.Errorf("shed code = %q, want %q", code, codeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	fams := scrape(t, ts.URL)
	if n := sampleSum(fams["rqp_shed_total"], "", map[string]string{"class": "run", "reason": "limiter"}); n != 1 {
		t.Errorf("rqp_shed_total{run,limiter} = %v, want 1", n)
	}
	// The gauge mirrors only admitted requests (the direct pre-fill bypasses
	// it); the family must still render with the run class pre-touched.
	if fams["rqp_inflight"] == nil {
		t.Error("rqp_inflight family missing from the scrape")
	}

	srv.runLimiter.Release(true)
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release run status = %d: %v", resp.StatusCode, body)
	}
	if n := srv.runLimiter.Inflight(); n != 0 {
		t.Errorf("limiter inflight after run = %d, want 0", n)
	}
}

// TestRunShedByBulkhead fills one session's bulkhead and asserts the shed
// rolls the shared limiter slot back (Cancel, no outcome feedback).
func TestRunShedByBulkhead(t *testing.T) {
	srv, ts := overloadServer(t, Config{MaxConcurrentRuns: 8, SessionMaxRuns: 1})
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})

	srv.mu.Lock()
	e := srv.sessions[id]
	srv.mu.Unlock()
	if !e.bulkhead.TryAcquire() {
		t.Fatal("could not pre-fill the session bulkhead")
	}
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "planbouquet", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429: %v", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != codeOverloaded {
		t.Errorf("shed code = %q, want %q", code, codeOverloaded)
	}
	if n := srv.runLimiter.Inflight(); n != 0 {
		t.Errorf("limiter inflight after bulkhead shed = %d, want 0 (Cancel must roll back)", n)
	}
	if lim := srv.runLimiter.Limit(); lim != 8 {
		t.Errorf("limiter limit after bulkhead shed = %v, want 8 (no outcome feedback)", lim)
	}
	fams := scrape(t, ts.URL)
	if n := sampleSum(fams["rqp_shed_total"], "", map[string]string{"class": "run", "reason": "bulkhead"}); n != 1 {
		t.Errorf("rqp_shed_total{run,bulkhead} = %v, want 1", n)
	}

	e.bulkhead.Release()
	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "planbouquet", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release run status = %d: %v", resp.StatusCode, body)
	}
}

// TestBuildShedByLimiter gates the build path and asserts session creation
// past the build concurrency limit is shed with 429.
func TestBuildShedByLimiter(t *testing.T) {
	gate := make(chan struct{})
	orig := buildSession
	buildSession = func(ctx context.Context, bq workload.Spec, opts repro.Options) (*repro.Session, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return orig(ctx, bq, opts)
	}
	t.Cleanup(func() { buildSession = orig })

	_, ts := overloadServer(t, Config{MaxConcurrentBuilds: 1})
	resp, body := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first create status = %d: %v", resp.StatusCode, body)
	}
	id := body["id"].(string)

	resp, body = postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create status = %d, want 429: %v", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != codeOverloaded {
		t.Errorf("shed code = %q, want %q", code, codeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("build shed missing Retry-After")
	}
	fams := scrape(t, ts.URL)
	if n := sampleSum(fams["rqp_inflight"], "", map[string]string{"class": "build"}); n != 1 {
		t.Errorf("rqp_inflight{build} = %v, want 1", n)
	}

	close(gate)
	awaitReady(t, ts.URL, id)
	resp, body = postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-build create status = %d: %v", resp.StatusCode, body)
	}
}

// TestBuildBreaker drives consecutive build failures past the threshold,
// asserts the circuit opens (503 + Retry-After, rqp_breaker_state 1), and
// that after the cooldown a half-open probe with a healthy builder closes it
// again.
func TestBuildBreaker(t *testing.T) {
	orig := buildSession
	var fail atomic.Bool
	fail.Store(true)
	buildSession = func(ctx context.Context, bq workload.Spec, opts repro.Options) (*repro.Session, error) {
		if fail.Load() {
			return nil, fmt.Errorf("injected build failure")
		}
		return orig(ctx, bq, opts)
	}
	t.Cleanup(func() { buildSession = orig })

	srv, ts := overloadServer(t, Config{
		MaxConcurrentBuilds: 8,
		BreakerThreshold:    2,
		BreakerCooldown:     50 * time.Millisecond,
	})

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("create %d status = %d: %v", i, resp.StatusCode, body)
		}
		awaitStatus(t, ts.URL, body["id"].(string), statusFailed)
	}

	resp, body := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit create status = %d, want 503: %v", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != codeOverloaded {
		t.Errorf("open-circuit code = %q, want %q", code, codeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-circuit response missing Retry-After")
	}
	fams := scrape(t, ts.URL)
	if v := sampleSum(fams["rqp_breaker_state"], "", nil); v != 1 {
		t.Errorf("rqp_breaker_state = %v, want 1 (open)", v)
	}
	if n := sampleSum(fams["rqp_shed_total"], "", map[string]string{"class": "build", "reason": "breaker"}); n != 1 {
		t.Errorf("rqp_shed_total{build,breaker} = %v, want 1", n)
	}

	// Heal the dependency, wait out the cooldown, and let the half-open probe
	// close the circuit.
	fail.Store(false)
	time.Sleep(60 * time.Millisecond)
	resp, body = postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("probe create status = %d, want 202: %v", resp.StatusCode, body)
	}
	awaitReady(t, ts.URL, body["id"].(string))
	if st := srv.breaker.State(); st != 0 {
		t.Errorf("breaker state after successful probe = %d, want 0 (closed)", st)
	}
}
