// Server-side durability: session metadata persistence, crash recovery and
// the durable run resources. A server started with Config.DataDir lays out
//
//	<dataDir>/<sessionID>/session.json   creation metadata (this file)
//	<dataDir>/<sessionID>/space.ess      persisted ESS (session layer)
//	<dataDir>/<sessionID>/runs/<id>.json checkpointed run states (runstate)
//
// Recover replays that layout after a restart: every session directory is
// re-registered and rebuilt asynchronously — rehydrating the persisted ESS,
// so a ready session comes back without re-running the optimizer enumeration
// — and each interrupted durable run is resumed from its last checkpoint (or
// failed over with the error recorded on its run resource).

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	repro "repro"
	"repro/internal/guard"
	"repro/internal/runstate"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// sessionMeta is the versioned creation record persisted per durable
// session, enough to replay handleCreateSession's work after a restart.
type sessionMeta struct {
	ID      string `json:"id"`
	Query   string `json:"query"`
	GridRes int    `json:"gridRes,omitempty"`
	Profile string `json:"profile,omitempty"`
}

// claimSessionDir creates a pinned session's directory as an exclusive
// cross-node claim: with a shared fleet data dir, in-memory duplicate checks
// cover one process only, so the directory create (Mkdir, not MkdirAll) is
// the arbiter — exactly one node wins, the rest see EEXIST and answer 409.
func claimSessionDir(dir string) error {
	if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		return err
	}
	return os.Mkdir(dir, 0o755)
}

// saveSessionMeta atomically persists the creation record into the session
// directory (creating it if needed).
func saveSessionMeta(dir string, meta sessionMeta) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	return runstate.WriteFileAtomic(filepath.Join(dir, "session.json"), data)
}

// loadSessionMeta reads a session directory's creation record.
func loadSessionMeta(dir string) (sessionMeta, error) {
	var meta sessionMeta
	data, err := os.ReadFile(filepath.Join(dir, "session.json"))
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(data, &meta); err != nil {
		return meta, fmt.Errorf("session metadata %s: %w", dir, err)
	}
	return meta, nil
}

// Recover re-registers every session persisted under Config.DataDir and
// launches its asynchronous rebuild: the persisted ESS is rehydrated (no
// optimizer enumeration), and once the session is ready its interrupted
// durable runs are resumed from their last checkpoints. Call it once, after
// construction and before serving. Directories whose metadata is unreadable
// are skipped (logged via the returned error list semantics: the first error
// is returned after all recoverable sessions have been launched).
func (s *Server) Recover(ctx context.Context) error {
	if s.cfg.DataDir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("server: recover: %w", err)
	}
	var firstErr error
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		meta, err := loadSessionMeta(filepath.Join(s.cfg.DataDir, ent.Name()))
		if err != nil {
			if firstErr == nil && !os.IsNotExist(err) {
				firstErr = err
			}
			continue
		}
		if meta.ID == "" {
			meta.ID = ent.Name()
		}
		if err := s.recoverSession(meta, nil); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AdoptOptions parameterizes AdoptSession: the adopting node's name (stamped
// into the ownership-epoch record and failover trace markers) and a
// per-resumed-run callback for the fleet layer's failover accounting.
type AdoptOptions struct {
	// Node names the new owner for epoch records and trace markers.
	Node string
	// OnFailover is called once per interrupted run the adoption resumed
	// (err nil on success, the resume error otherwise). Optional.
	OnFailover func(runID string, err error)
}

// AdoptSession extends the Recover path from "my sessions" to "orphaned
// sessions": it re-registers ONE session directory from the shared data dir
// — typically one whose previous owner a fleet heartbeat just declared dead
// — advances the session's ownership epoch (fencing out the previous
// owner's late checkpoints), and resumes its interrupted durable runs. The
// session registers synchronously (so requests immediately see it as
// building) and rebuilds asynchronously, exactly like restart recovery.
func (s *Server) AdoptSession(id string, opts AdoptOptions) error {
	if s.cfg.DataDir == "" {
		return fmt.Errorf("server: adopt %s: server has no data directory", id)
	}
	meta, err := loadSessionMeta(filepath.Join(s.cfg.DataDir, id))
	if err != nil {
		return fmt.Errorf("server: adopt %s: %w", id, err)
	}
	if meta.ID == "" {
		meta.ID = id
	}
	return s.recoverSession(meta, &opts)
}

// recoverSession re-registers one persisted session and launches its
// rebuild + run-resume pipeline in the background. A non-nil adopt marks a
// fleet failover adoption rather than own-restart recovery.
func (s *Server) recoverSession(meta sessionMeta, adopt *AdoptOptions) error {
	sp, ok := workload.ByName(meta.Query)
	if !ok {
		return fmt.Errorf("server: recover %s: unknown query %q", meta.ID, meta.Query)
	}
	opts := repro.BenchmarkOptions()
	opts.Workers = s.cfg.BuildWorkers
	if meta.Profile == "commercial" {
		opts.Params = repro.CommercialProfile()
	}
	if meta.GridRes != 0 {
		opts.GridRes = meta.GridRes
	}
	dir := filepath.Join(s.cfg.DataDir, meta.ID)
	opts.DataDir = dir

	ctx, cancel := context.WithCancel(context.Background())
	// Recovery bypasses the build limiter and breaker: these sessions were
	// admitted before the crash, and refusing their rehydration would turn a
	// restart into data loss. The bulkhead still applies to new runs.
	e := &session{
		id: meta.ID, query: sp.Name, d: sp.D, dataDir: dir,
		status: statusBuilding, lastUsed: time.Now(), cancel: cancel,
		bulkhead: guard.NewBulkhead(s.cfg.SessionMaxRuns),
		runs:     map[string]*runRecord{},
	}
	s.mu.Lock()
	if _, exists := s.sessions[e.id]; exists {
		s.mu.Unlock()
		cancel()
		return fmt.Errorf("server: recover: duplicate session id %q", e.id)
	}
	s.sessions[e.id] = e
	// Advance the ID allocator past recovered sessions so new creations
	// cannot collide with recovered directories.
	if n, err := strconv.Atoi(strings.TrimPrefix(e.id, "s")); err == nil && n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()

	s.buildWG.Add(1)
	go func() {
		defer s.buildWG.Done()
		defer cancel()
		start := time.Now()
		sess, err := buildSession(ctx, sp, opts)
		s.metrics.buildDuration.Observe(time.Since(start).Seconds())
		s.mu.Lock()
		e.lastUsed = time.Now()
		if err != nil {
			e.status = statusFailed
			e.buildErr = err
			s.mu.Unlock()
			s.metrics.builds.With("failed").Inc()
			return
		}
		e.sess = sess
		e.status = statusReady
		s.mu.Unlock()
		s.metrics.builds.With("ok").Inc()
		if adopt != nil {
			// Fence before the first resume: once the epoch advances, any
			// checkpoint the previous owner's still-running incarnations
			// write is rejected terminally (runstate epoch fencing).
			if _, err := sess.AdvanceOwnershipEpoch(adopt.Node); err != nil {
				s.mu.Lock()
				if runstate.IsEpochRace(err) {
					// Another node won the adoption CAS: it owns the session
					// and has fenced us out. Step aside silently — keeping a
					// local replica (or marking it failed) would advertise
					// state we no longer own; ring convergence re-routes.
					delete(s.sessions, e.id)
				} else {
					e.status = statusFailed
					e.buildErr = fmt.Errorf("server: adopt %s: fence: %w", e.id, err)
				}
				s.mu.Unlock()
				return
			}
		}
		s.resumeInterrupted(ctx, e, sess, adopt)
	}()
	return nil
}

// resumeInterrupted drives every interrupted durable run of a recovered
// session to completion from its last checkpoint. A run whose resume fails
// (corrupt snapshot, dimensionality skew, cancellation at shutdown) is
// failed over: the error lands on its run resource instead of wedging
// recovery, and its checkpoint stays on disk for inspection.
func (s *Server) resumeInterrupted(ctx context.Context, e *session, sess *repro.Session, adopt *AdoptOptions) {
	// Advance the run-ID allocator past EVERY durable run on disk, not just
	// the interrupted ones: with a shared fleet data directory, another
	// node's incarnation of this session may have completed runs this
	// process never saw, and reissuing their IDs would clobber terminal
	// snapshots.
	if all, err := sess.DurableRuns(); err == nil {
		for _, rid := range all {
			s.noteRunSeq(e, rid)
		}
	}
	ids, err := sess.InterruptedRuns()
	if err != nil {
		return
	}
	for _, rid := range ids {
		res, err := sess.ResumeRun(ctx, rid)
		if adopt != nil && adopt.OnFailover != nil {
			adopt.OnFailover(rid, err)
		}
		s.mu.Lock()
		if err != nil {
			e.runs[rid] = &runRecord{status: runFailed, resumed: true, err: err.Error()}
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		if adopt != nil {
			// Stamp the failover into the resumed stream (a zero-width
			// marker at the resume ledger) so the adoption is visible in
			// the run's events, span tree, and flamegraph.
			res.Events = injectFailover(res.Events, adopt.Node, rid)
		}
		algo := res.Algorithm
		s.metrics.resumes.Inc()
		s.metrics.observeRun(algo.String(), res.Degraded, res.Retries, res.SubOpt, res.TraceID)
		// The resumed incarnation reuses the original trace ID (persisted in
		// the run snapshot), so the recovered tree replaces any partial one:
		// one trace spanning daemon restarts.
		s.recordTrace(trace.FromRun(res.TraceID, res.Events))
		resp := s.buildRunResponse(sess, algo, res)
		s.recordRun(e, res, resp)
	}
}

// injectFailover inserts a failover marker event directly after the stream's
// run_resume event (or at the head when none exists), carrying the adopting
// node and the resume-point ledger.
func injectFailover(events []telemetry.Event, node, runID string) []telemetry.Event {
	ev := telemetry.Event{Kind: telemetry.Failover, Dim: -1, Detail: runID, Mode: node}
	for i, e := range events {
		if e.Kind == telemetry.RunResume {
			ev.Spent = e.Spent
			out := make([]telemetry.Event, 0, len(events)+1)
			out = append(out, events[:i+1]...)
			out = append(out, ev)
			return append(out, events[i+1:]...)
		}
	}
	return append([]telemetry.Event{ev}, events...)
}

// noteRunSeq advances the session's run-ID allocator past a recovered run
// named with the server's own "r<N>" scheme.
func (s *Server) noteRunSeq(e *session, rid string) {
	n, err := strconv.Atoi(strings.TrimPrefix(rid, "r"))
	if err != nil {
		return
	}
	s.mu.Lock()
	if n > e.runSeq {
		e.runSeq = n
	}
	s.mu.Unlock()
}

// retryAfterSeconds estimates when session capacity plausibly frees up: the
// next idle-eviction sweep, floored at one second, or a conservative default
// when eviction is disabled.
func (s *Server) retryAfterSeconds() int {
	interval := s.cfg.EvictInterval
	if interval <= 0 && s.cfg.SessionTTL > 0 {
		interval = s.cfg.SessionTTL / 4
	}
	if interval <= 0 {
		return 30
	}
	if secs := int(interval / time.Second); secs >= 1 {
		return secs
	}
	return 1
}

// runInfo is one durable run resource: the on-disk checkpoint state merged
// with what the serving process remembers about the run.
type runInfo struct {
	RunID string `json:"runId"`
	// Status is completed, interrupted, or failed (resume fail-over).
	Status string `json:"status"`
	// Resumed reports the run was rehydrated from a crash checkpoint.
	Resumed bool `json:"resumed,omitempty"`
	// Contour is the checkpointed restart contour (1-based for symmetry
	// with traces; 1 means no contour was completed yet).
	Contour int `json:"contour"`
	// Spent is the checkpointed budget ledger across incarnations.
	Spent float64 `json:"spent"`
	// SubOpt is the final sub-optimality (completed runs only).
	SubOpt float64 `json:"subOpt,omitempty"`
	// Error is the terminal fail-over error, if any.
	Error string `json:"error,omitempty"`
}

// handleListRuns serves GET /v1/sessions/{id}/runs: every durable run of the
// session, recovered or started by this process, sorted by run ID.
func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sess, ok := s.ready(w, e)
	if !ok {
		return
	}
	if e.dataDir == "" {
		s.writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Errorf("session %s is not durable (server started without -data)", e.id))
		return
	}
	ids, err := sess.DurableRuns()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	out := make([]runInfo, 0, len(ids))
	for _, rid := range ids {
		if info, ok := s.runInfoFor(e, sess, rid); ok {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RunID < out[j].RunID })
	writeJSON(w, http.StatusOK, out)
}

// handleGetRun serves GET /v1/sessions/{id}/runs/{rid}: the full run result
// when this process holds one (completed durable run), otherwise the
// checkpoint-level run info.
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sess, ok := s.ready(w, e)
	if !ok {
		return
	}
	rid := r.PathValue("rid")
	s.mu.Lock()
	rec := e.runs[rid]
	s.mu.Unlock()
	if rec != nil && rec.resp != nil {
		writeJSON(w, http.StatusOK, rec.resp)
		return
	}
	info, ok := s.runInfoFor(e, sess, rid)
	if !ok {
		s.writeError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("no run %q in session %s", rid, e.id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// runInfoFor merges a run's durable snapshot with the in-memory record.
func (s *Server) runInfoFor(e *session, sess *repro.Session, rid string) (runInfo, bool) {
	contour, spent, completed, err := sess.DurableRunState(rid)
	if err != nil {
		return runInfo{}, false
	}
	info := runInfo{RunID: rid, Contour: contour + 1, Spent: spent, Status: runInterrupted}
	if completed {
		info.Status = runCompleted
	}
	s.mu.Lock()
	if rec := e.runs[rid]; rec != nil {
		info.Resumed = rec.resumed
		info.Error = rec.err
		if rec.status != "" {
			info.Status = rec.status
		}
		if rec.resp != nil {
			info.SubOpt = rec.resp.SubOpt
		}
	}
	s.mu.Unlock()
	return info, true
}
