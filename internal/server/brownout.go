// Staged brownout and load vitals: the server side of fleet-aware overload
// control. A periodic loop samples the node's scalar pressure (from its own
// limiters, shed rate and breaker, combined with the fleet aggregate the
// fleet layer supplies) and feeds it to the guard.Brownout ladder; the
// resulting stage gates progressively more work:
//
//	stage ≥ 1  hedging disabled (fleet layer), trace sampling dropped
//	stage ≥ 2  sweeps and atlas renders shed
//	stage ≥ 3  session builds shed; runs still admitted
//	stage ≥ 4  runs shed too — only health, metrics and fleet endpoints serve
//
// The current stage is published as rqp_brownout_stage, and Vitals() is the
// snapshot the fleet gossips on every heartbeat response.
package server

import (
	"fmt"
	"net/http"
	"runtime"
	"time"

	"repro/internal/guard"
)

// shedRateWindow is the minimum sampling window for the shed-rate
// derivation: two calls closer together than this reuse the last rate
// instead of dividing a tiny count by a tiny interval.
const shedRateWindow = 250 * time.Millisecond

// StartBrownout launches the periodic pressure-sampling loop. A no-op
// unless Config.Brownout is set (single-node servers stay at stage 0
// without a goroutine to show for it). Stop with Close.
func (s *Server) StartBrownout() {
	if s.brownout == nil || s.brownoutQ != nil {
		return
	}
	interval := s.cfg.BrownoutInterval
	if interval <= 0 {
		interval = time.Second
	}
	s.brownoutQ = make(chan struct{})
	s.brownoutWG.Add(1)
	go func() {
		defer s.brownoutWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.brownoutTick()
			case <-s.brownoutQ:
				return
			}
		}
	}()
}

// brownoutTick samples pressure once and advances the ladder. Exposed to
// tests (package-internal) for deterministic stage walking.
func (s *Server) brownoutTick() {
	p := s.Vitals().Pressure()
	s.hookMu.Lock()
	fleetFn, onStage := s.fleetPressure, s.onStage
	s.hookMu.Unlock()
	if fleetFn != nil {
		if fp := fleetFn(); fp > p {
			p = fp
		}
	}
	from := s.brownout.Stage()
	stage, changed := s.brownout.Observe(p)
	if changed && onStage != nil {
		onStage(from, stage)
	}
}

// Stage reports the current brownout stage; 0 when brownout is disabled.
func (s *Server) Stage() int { return s.brownout.Stage() }

// SetFleetPressure installs the fleet-wide pressure aggregate the brownout
// tick folds in (max with local pressure). The fleet layer calls this once
// at node construction, before StartBrownout.
func (s *Server) SetFleetPressure(fn func() float64) {
	s.hookMu.Lock()
	s.fleetPressure = fn
	s.hookMu.Unlock()
}

// OnBrownoutStage installs an observer fired on every stage transition
// (from the brownout loop's goroutine). The fleet layer uses it to record
// the transition into the membership timeline.
func (s *Server) OnBrownoutStage(fn func(from, to int)) {
	s.hookMu.Lock()
	s.onStage = fn
	s.hookMu.Unlock()
}

// Vitals snapshots the node's load signals — the payload gossiped to peers
// on every heartbeat response and served at /v1/fleet/vitals. The Node
// field is left empty; the fleet layer stamps its self address.
func (s *Server) Vitals() guard.Vitals {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return guard.Vitals{
		Stage:          s.Stage(),
		RunInflight:    s.runLimiter.Inflight(),
		RunLimit:       s.runLimiter.Limit(),
		BuildInflight:  s.buildLimiter.Inflight(),
		BuildLimit:     s.buildLimiter.Limit(),
		ShedRate:       s.shedRate(),
		BreakerState:   s.breaker.State(),
		HeapBytes:      ms.HeapAlloc,
		Goroutines:     runtime.NumGoroutine(),
		RetryAfterHint: s.retryAfterHint(),
	}
}

// retryAfterHint is the Retry-After (seconds) the node advertises for edge
// sheds performed on its behalf: the breaker's remaining cooldown when the
// build circuit is open, otherwise the brownout depth (deeper stages take
// dwell ticks to unwind, so clients should stay away longer), floor 1.
func (s *Server) retryAfterHint() int {
	hint := 1
	if ra := s.breaker.RetryAfter(); ra > 0 {
		hint = cooldownSeconds(ra)
	}
	if st := s.Stage(); st > 0 && hint < st+1 {
		hint = st + 1
	}
	return hint
}

// countShed accounts one overload rejection into both the labeled metric
// and the vitals shed counter.
func (s *Server) countShed(class, reason string) {
	s.metrics.shed.With(class, reason).Inc()
	s.shedTotal.Add(1)
}

// shedRate derives the recent shed throughput (rejections/second) from the
// cumulative counter over a sliding sample window. Calls within
// shedRateWindow of the last derivation reuse it, so heartbeat-cadence
// callers see a stable value and the division never runs on a degenerate
// interval.
func (s *Server) shedRate() float64 {
	s.shedMu.Lock()
	defer s.shedMu.Unlock()
	now := time.Now()
	if s.shedLastAt.IsZero() {
		s.shedLast = s.shedTotal.Load()
		s.shedLastAt = now
		return 0
	}
	if elapsed := now.Sub(s.shedLastAt); elapsed >= shedRateWindow {
		count := s.shedTotal.Load()
		s.shedRateV = float64(count-s.shedLast) / elapsed.Seconds()
		s.shedLast = count
		s.shedLastAt = now
	}
	return s.shedRateV
}

// shedBrownout rejects a request the current brownout stage refuses to
// serve: 503 (the node is deliberately degraded, not momentarily busy)
// with the overloaded envelope code and a jittered Retry-After derived
// from the stage depth.
func (s *Server) shedBrownout(w http.ResponseWriter, class string) {
	s.countShed(class, "brownout")
	s.setRetryAfter(w, s.retryAfterHint())
	s.writeError(w, http.StatusServiceUnavailable, codeOverloaded,
		fmt.Errorf("brownout stage %d: %s requests are shed until pressure recedes", s.Stage(), class))
}
