package server

import (
	"net/http"
	"testing"
)

// TestStrategiesEndpoint checks GET /v1/strategies lists every registered
// strategy with its kind and guarantee formula — the discovery trio, the
// native baseline and the selection family.
func TestStrategiesEndpoint(t *testing.T) {
	ts := testServer(t)
	var infos []struct {
		Name      string            `json:"name"`
		Kind      string            `json:"kind"`
		Guarantee string            `json:"guarantee"`
		Resumable bool              `json:"resumable"`
		Params    map[string]string `json:"params"`
	}
	resp := getJSON(t, ts.URL+"/v1/strategies", &infos)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := map[string]string{
		"native":        "baseline",
		"planbouquet":   "discovery",
		"spillbound":    "discovery",
		"alignedbound":  "discovery",
		"penaltyaware":  "selection",
		"probabilistic": "selection",
		"minmaxregret":  "selection",
	}
	got := map[string]string{}
	for _, in := range infos {
		got[in.Name] = in.Kind
		if in.Guarantee == "" {
			t.Errorf("%s: empty guarantee formula", in.Name)
		}
	}
	for name, kind := range want {
		if got[name] != kind {
			t.Errorf("%s: kind %q, want %q", name, got[name], kind)
		}
	}
}

// TestRunStrategyFieldAndLegacyCounter runs a selection strategy through the
// canonical "strategy" field, then exercises the deprecated "algorithm"
// field with an alias name and checks both legacy usages are counted into
// rqp_deprecated_requests_total.
func TestRunStrategyFieldAndLegacyCounter(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})

	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"strategy": "minmaxregret", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("strategy run status %d: %v", resp.StatusCode, body)
	}
	if body["algorithm"] != "minmaxregret" {
		t.Errorf("echoed strategy %v", body["algorithm"])
	}
	if cost, _ := body["totalCost"].(float64); cost <= 0 {
		t.Errorf("totalCost %v", body["totalCost"])
	}
	fams := scrape(t, ts.URL)
	dep := fams["rqp_deprecated_requests_total"]
	if n := sampleSum(dep, "", map[string]string{"route": "field:algorithm"}); n != 0 {
		t.Errorf("canonical field counted as legacy: %v", n)
	}

	resp, body = postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "sb", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy run status %d: %v", resp.StatusCode, body)
	}
	if body["algorithm"] != "spillbound" {
		t.Errorf("alias resolved to %v", body["algorithm"])
	}
	fams = scrape(t, ts.URL)
	dep = fams["rqp_deprecated_requests_total"]
	if n := sampleSum(dep, "", map[string]string{"route": "field:algorithm"}); n != 1 {
		t.Errorf("legacy field count %v, want 1", n)
	}
	if n := sampleSum(dep, "", map[string]string{"route": "strategy:spillbound"}); n != 1 {
		t.Errorf("legacy name count %v, want 1", n)
	}

	// The sweep handler shares the resolver: canonical parameter works, the
	// legacy parameter spelling counts.
	var sweep map[string]any
	if resp := getJSON(t, ts.URL+"/v1/sessions/"+id+"/sweep?strategy=probabilistic&max=9", &sweep); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %v", resp.StatusCode, sweep)
	}
	if sweep["algorithm"] != "probabilistic" {
		t.Errorf("sweep strategy %v", sweep["algorithm"])
	}
	if mso, _ := sweep["mso"].(float64); mso < 1 {
		t.Errorf("sweep mso %v", sweep["mso"])
	}
}
