// Package server exposes the robust query processing library over HTTP —
// the "automated assistant" deployment direction the paper sketches in its
// conclusions: a service that owns the expensive offline ESS constructions
// (Sec 7) and answers per-instance processing requests with guarantees,
// traces and robustness metrics.
//
// The API is versioned under /v1. Session construction is asynchronous:
// creation returns 202 Accepted immediately while the parallel ESS build
// saturates the configured workers in the background, and the session
// resource reports "building" → "ready" (or "failed") with cell-level
// progress. Run and sweep requests against a session that is not ready are
// rejected with 409 Conflict.
//
//	POST /v1/sessions                  {"query":"4D_Q91","gridRes":8}   → 202 {"id","status":"building","progress":{...}}
//	GET  /v1/sessions/{id}             session status, progress, metadata + guarantees once ready
//	POST /v1/sessions/{id}/run         {"strategy":"spillbound","truth":[0.8,0.008,0.05,0.6]}
//	GET  /v1/sessions/{id}/sweep?strategy=spillbound&max=200
//	GET  /v1/sessions/{id}/runs        durable run resources (servers started with a data directory)
//	GET  /v1/sessions/{id}/runs/{rid}  one durable run: full result, or checkpoint state if interrupted
//	GET  /v1/strategies                registered strategy listing (name, kind, guarantee, params)
//	GET  /v1/queries                   benchmark query list
//	GET  /v1/healthz
//
// Run, sweep and atlas requests name their strategy through the registry
// (see GET /v1/strategies): the "strategy" field/parameter is canonical, the
// legacy "algorithm" spelling and the short aliases ("sb", "pb", ...) still
// resolve but are counted into rqp_deprecated_requests_total. An unknown
// name is rejected with the envelope code "unknown_strategy".
//
// A server configured with Config.DataDir is durable: sessions persist their
// ESS and run checkpoints under per-session directories, run requests may
// set {"durable":true} to checkpoint discovery state at every contour
// boundary, and a restarted server (Recover) rehydrates ready sessions
// without rebuilding and resumes interrupted runs — resumed results report
// "resumed": true. Overload responses (429, 503, 504) carry a Retry-After
// header.
//
// Every error response uses the uniform envelope
//
//	{"error":{"code":"not_found","message":"no session \"s9\""}}
//
// with stable machine-readable codes: bad_request, not_found,
// unknown_strategy, session_building, session_failed, too_many_sessions,
// overloaded, timeout, canceled, internal. Adaptive overload control (AIMD run/build limiters,
// per-session bulkheads, a session-build circuit breaker) sheds excess work
// with 429/503 "overloaded" responses instead of queueing it.
//
// Deprecated: the unversioned paths (/sessions, /queries, /healthz) remain
// mounted as aliases of their /v1 counterparts for one release and will be
// removed in the next; clients should migrate to /v1.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	repro "repro"
	"repro/internal/guard"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config tunes the server's operational guards. The zero value disables all
// of them (useful in tests that exercise unbounded behaviour).
type Config struct {
	// RequestTimeout is the per-request deadline attached to every request
	// context; run/sweep handlers pass it into the library, so an expired
	// budget aborts the discovery mid-contour. Session builds are NOT
	// bounded by it — they run asynchronously on a background context.
	// 0 disables.
	RequestTimeout time.Duration
	// SessionTTL evicts sessions idle for longer than this. Sessions still
	// building are never evicted. 0 disables eviction (the map then grows
	// without bound, as before).
	SessionTTL time.Duration
	// EvictInterval is how often the eviction sweep runs (defaults to
	// SessionTTL/4 when unset and a TTL is configured).
	EvictInterval time.Duration
	// MaxSessions rejects new session creation past this registry size
	// (0 = unlimited), bounding the memory a burst of builds can pin.
	MaxSessions int
	// BuildWorkers bounds each session build's parallelism (0 = GOMAXPROCS,
	// 1 = serial). The built space is identical regardless.
	BuildWorkers int
	// DataDir, when non-empty, makes the server durable: each session gets
	// a subdirectory holding its creation metadata, its persisted ESS and
	// its checkpointed run states. A restarted server pointed at the same
	// directory (Recover) rehydrates ready sessions without rebuilding the
	// ESS and resumes interrupted durable runs from their last checkpoint.
	DataDir string
	// MaxConcurrentRuns bounds concurrently executing run/sweep requests
	// with an AIMD limiter: this is the ceiling, successful completions grow
	// the working limit additively and failures halve it, so sustained
	// overload converges on what the process actually keeps up with. Excess
	// requests are shed with 429 + Retry-After. 0 disables.
	MaxConcurrentRuns int
	// MaxConcurrentBuilds bounds concurrently accepted session builds the
	// same way (recovery rebuilds are exempt — they were admitted before the
	// crash). 0 disables.
	MaxConcurrentBuilds int
	// SessionMaxRuns caps concurrent run/sweep requests per session (a
	// bulkhead), so a burst against one session cannot monopolize the shared
	// run limiter. 0 disables.
	SessionMaxRuns int
	// BreakerThreshold is how many consecutive session-build failures open
	// the build circuit breaker: creation is then rejected immediately with
	// 503 until BreakerCooldown passes and a probe build succeeds.
	// 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the open circuit rejects before admitting
	// a half-open probe.
	BreakerCooldown time.Duration
	// TraceSample is the probabilistic head-sampling rate for trace
	// retention: the fraction of traces whose span trees are kept in the
	// bounded in-memory store behind GET /v1/runs/{id}/trace. The decision
	// is deterministic per trace ID. 0 keeps everything (the zero Config
	// stays fully observable); negative keeps nothing. Traceparent
	// propagation and RunResult trace IDs are unaffected by sampling.
	TraceSample float64
	// Brownout enables the staged brownout controller (see brownout.go and
	// internal/guard.Brownout): a periodic loop samples the node's pressure
	// score and walks the degradation ladder with hysteresis. Off by
	// default — single-node servers keep the existing binary shed behavior
	// and stay at stage 0 permanently (rqpd only enables it in fleet mode).
	Brownout bool
	// BrownoutInterval is the pressure sampling cadence (default 1s).
	BrownoutInterval time.Duration
	// BrownoutConfig tunes the stage thresholds and hysteresis; the zero
	// value takes guard's defaults.
	BrownoutConfig guard.BrownoutConfig
}

// DefaultConfig returns the production guard rails: 30s request budget,
// 30min idle session TTL, at most 256 live sessions, builds on every core,
// adaptive run/build concurrency limits with per-session bulkheads, and a
// build circuit breaker.
func DefaultConfig() Config {
	return Config{
		RequestTimeout:      30 * time.Second,
		SessionTTL:          30 * time.Minute,
		MaxSessions:         256,
		MaxConcurrentRuns:   64,
		MaxConcurrentBuilds: 4,
		SessionMaxRuns:      32,
		BreakerThreshold:    3,
		BreakerCooldown:     30 * time.Second,
	}
}

// Session lifecycle states reported by the API.
const (
	statusBuilding = "building"
	statusReady    = "ready"
	statusFailed   = "failed"
)

// buildSession constructs the library session for an accepted create
// request. A package variable so tests can substitute a gated build and
// observe the intermediate "building" state deterministically.
var buildSession = repro.NewBenchmarkSessionContext

// Server is the HTTP handler set with its session registry.
type Server struct {
	cfg     Config
	metrics *serverMetrics

	// Overload control (guard package); all nil-safe, so a zero Config
	// leaves every admission path unconditional.
	runLimiter   *guard.AIMD     // run/sweep requests, adaptive
	buildLimiter *guard.AIMD     // accepted session builds, adaptive
	breaker      *guard.Breaker  // session-build circuit breaker
	brownout     *guard.Brownout // staged degradation (nil = stage 0 forever)

	// Shed-rate bookkeeping feeding the gossiped vitals: every overload
	// rejection counts into shedTotal, and shedMu guards the windowed
	// requests/second derivation (see shedRate).
	shedTotal  atomic.Int64
	shedMu     sync.Mutex
	shedLast   int64
	shedLastAt time.Time
	shedRateV  float64

	// Fleet hooks, set by the fleet layer before Start* (hookMu guards the
	// fields, not the calls).
	hookMu        sync.Mutex
	fleetPressure func() float64     // fleet-wide pressure aggregate
	onStage       func(from, to int) // brownout stage-transition observer

	// traces is the bounded store of sampled span trees (runs and session
	// builds), keyed by trace ID.
	traces *traceStore

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	evictQ   chan struct{} // closed to stop the eviction loop
	evictWG  sync.WaitGroup
	buildWG  sync.WaitGroup

	brownoutQ  chan struct{} // closed to stop the brownout loop
	brownoutWG sync.WaitGroup
}

type session struct {
	id      string
	query   string
	d       int
	dataDir string // per-session durable directory ("" = not durable)

	// bulkhead caps this session's concurrent run/sweep requests
	// (nil = uncapped).
	bulkhead *guard.Bulkhead

	// Guarded by Server.mu.
	status   string
	sess     *repro.Session // nil until status == ready
	buildErr error          // set when status == failed
	lastUsed time.Time
	cancel   context.CancelFunc // aborts the in-flight build
	runSeq   int                // durable run ID allocator
	runs     map[string]*runRecord

	// Build progress, updated lock-free from build workers.
	cellsDone  atomic.Int64
	cellsTotal atomic.Int64
}

// runRecord is the in-memory state of one durable run, complementing the
// on-disk checkpoint snapshot with what only the serving process knows: the
// full result of a completed incarnation and whether it was resumed.
type runRecord struct {
	status  string // runCompleted, runInterrupted, runFailed
	resumed bool
	resp    *runResponse // non-nil once a completed result exists
	err     string       // terminal resume/fail-over error, if any
}

// Durable run lifecycle states reported by the run resources.
const (
	runCompleted   = "completed"
	runInterrupted = "interrupted"
	runFailed      = "failed"
)

// New returns an empty server with no operational guards (zero Config).
func New() *Server {
	return NewWithConfig(Config{})
}

// NewWithConfig returns an empty server with the given guard configuration.
func NewWithConfig(cfg Config) *Server {
	s := &Server{cfg: cfg, sessions: make(map[string]*session), traces: newTraceStore(traceStoreCap)}
	if cfg.MaxConcurrentRuns > 0 {
		s.runLimiter = guard.NewAIMD(cfg.MaxConcurrentRuns, 1, cfg.MaxConcurrentRuns)
	}
	if cfg.MaxConcurrentBuilds > 0 {
		s.buildLimiter = guard.NewAIMD(cfg.MaxConcurrentBuilds, 1, cfg.MaxConcurrentBuilds)
	}
	if cfg.BreakerThreshold > 0 {
		s.breaker = guard.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	if cfg.Brownout {
		s.brownout = guard.NewBrownout(cfg.BrownoutConfig)
	}
	s.metrics = newServerMetrics(s)
	return s
}

// FleetSessionHeader pins the session ID a fleet front door hashed the
// placement from: handleCreateSession registers the session under this ID
// instead of allocating a sequential one, so every node in a shared-data-dir
// fleet derives the same owner from the same ID. Internal — the fleet proxy
// strips/sets it; clients never send it.
const FleetSessionHeader = "X-Rqp-Fleet-Session"

// validSessionID vets a pinned session ID: it becomes a directory name
// under the shared data dir and a path segment in /v1 URLs, so it must be
// short, lowercase-alphanumeric (plus - and _), and free of path tricks.
func validSessionID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("pinned session id must be 1-64 characters")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			continue
		}
		return fmt.Errorf("pinned session id %q: only [a-z0-9_-] allowed", id)
	}
	return nil
}

// HasSession reports whether the session ID is registered in this process,
// in any status (building, ready, failed). The fleet router uses it to
// decide between serving locally and kicking off an adoption of an orphaned
// on-disk session.
func (s *Server) HasSession(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sessions[id]
	return ok
}

// RecordTrace stores a span tree in the server's bounded trace store, making
// it retrievable via GET /v1/runs/{traceId}/trace. The fleet layer uses it
// to publish its membership-timeline trace next to run traces.
func (s *Server) RecordTrace(t *trace.Tree) { s.recordTrace(t) }

// Metrics exposes the server's telemetry registry, so embedders (cmd/rqpd)
// can register their own process-level instruments alongside.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics.reg }

// Handler returns the routed http.Handler wrapped with the resilience
// middleware: panic recovery (structured JSON 500), per-request timeout,
// and request body limits. Every route is mounted under /v1 and, for one
// deprecation release, at its legacy unversioned path; both mounts are
// instrumented (request count/latency/status by route pattern), and the
// legacy mounts additionally log a structured deprecation warning and count
// into rqp_deprecated_requests_total. The observability endpoints
// (/v1/metrics, /v1/debug/stats) are new in /v1 and have no legacy alias.
func (s *Server) Handler() http.Handler {
	m := s.metrics
	mux := http.NewServeMux()
	v1 := func(pattern string, h http.HandlerFunc) {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			panic("server: route pattern missing method: " + pattern)
		}
		versioned := method + " /v1" + path
		mux.HandleFunc(versioned, m.instrument(versioned, h))
	}
	route := func(pattern string, h http.HandlerFunc) {
		v1(pattern, h)
		// Legacy unversioned alias, kept for one deprecation release.
		mux.HandleFunc(pattern, m.deprecate(pattern, m.instrument(pattern, h)))
	}
	route("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	route("GET /queries", s.handleQueries)
	route("POST /sessions", s.handleCreateSession)
	route("GET /sessions/{id}", s.handleGetSession)
	route("POST /sessions/{id}/run", s.handleRun)
	route("GET /sessions/{id}/sweep", s.handleSweep)
	// Durable run resources are new in /v1 and have no legacy alias.
	v1("GET /sessions/{id}/runs", s.handleListRuns)
	v1("GET /sessions/{id}/runs/{rid}", s.handleGetRun)
	v1("GET /strategies", s.handleStrategies)
	v1("GET /atlas", s.handleAtlas)
	// Trace resources are keyed by trace ID, not session: a trace may span
	// daemon restarts (crash-resumed runs) and outlive its session.
	v1("GET /runs/{id}/trace", s.handleGetTrace)
	v1("GET /metrics", m.handleMetrics)
	v1("GET /debug/stats", m.handleDebugStats)
	// The trace middleware sits outermost so every response — including
	// panics recovered below it and overload sheds — carries Traceparent
	// and X-Request-ID headers.
	return s.traceMiddleware(s.recoverMiddleware(timeoutMiddleware(s.cfg.RequestTimeout, limitBodyMiddleware(mux))))
}

// StartEviction launches the background sweep that drops sessions idle for
// longer than the configured TTL. It is a no-op when no TTL is set. Stop
// with Close.
func (s *Server) StartEviction() {
	if s.cfg.SessionTTL <= 0 || s.evictQ != nil {
		return
	}
	interval := s.cfg.EvictInterval
	if interval <= 0 {
		interval = s.cfg.SessionTTL / 4
	}
	s.evictQ = make(chan struct{})
	s.evictWG.Add(1)
	go func() {
		defer s.evictWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.EvictIdle(time.Now())
			case <-s.evictQ:
				return
			}
		}
	}()
}

// EvictIdle drops every ready or failed session idle at the given instant
// for longer than the TTL, returning how many were evicted. Sessions still
// building are exempt — their build is in flight and their lastUsed only
// advances on completion. Exposed for deterministic tests; the background
// sweep calls it with time.Now().
func (s *Server) EvictIdle(now time.Time) int {
	if s.cfg.SessionTTL <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, e := range s.sessions {
		if e.status == statusBuilding {
			continue
		}
		if now.Sub(e.lastUsed) > s.cfg.SessionTTL {
			delete(s.sessions, id)
			n++
		}
	}
	return n
}

// SessionCount reports the live session registry size.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// buildingCount reports how many sessions are still building.
func (s *Server) buildingCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.sessions {
		if e.status == statusBuilding {
			n++
		}
	}
	return n
}

// readyCount reports how many sessions are built and servable.
func (s *Server) readyCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.sessions {
		if e.status == statusReady {
			n++
		}
	}
	return n
}

// Close stops the eviction sweep and brownout loop (if running), cancels
// every in-flight session build, and waits for all of them to wind down.
func (s *Server) Close() {
	if s.evictQ != nil {
		close(s.evictQ)
		s.evictWG.Wait()
		s.evictQ = nil
	}
	if s.brownoutQ != nil {
		close(s.brownoutQ)
		s.brownoutWG.Wait()
		s.brownoutQ = nil
	}
	s.mu.Lock()
	for _, e := range s.sessions {
		if e.cancel != nil {
			e.cancel()
		}
	}
	s.mu.Unlock()
	s.buildWG.Wait()
}

// queryInfo is one /queries entry.
type queryInfo struct {
	Name    string `json:"name"`
	D       int    `json:"d"`
	Catalog string `json:"catalog"`
	GridRes int    `json:"gridRes"`
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	var out []queryInfo
	for _, sp := range workload.TPCDSQueries() {
		out = append(out, queryInfo{Name: sp.Name, D: sp.D, Catalog: sp.Catalog, GridRes: sp.GridRes})
	}
	for _, sp := range []workload.Spec{workload.Q91(2), workload.JOB1a(), workload.EQ()} {
		out = append(out, queryInfo{Name: sp.Name, D: sp.D, Catalog: sp.Catalog, GridRes: sp.GridRes})
	}
	writeJSON(w, http.StatusOK, out)
}

// createRequest is the POST /v1/sessions payload.
type createRequest struct {
	// Query names a benchmark query (see /v1/queries).
	Query string `json:"query"`
	// GridRes overrides the recommended grid resolution (0 = default).
	GridRes int `json:"gridRes"`
	// Profile selects the cost profile: "postgres" (default) or
	// "commercial".
	Profile string `json:"profile"`
}

// buildProgress reports how far an asynchronous session build has come.
type buildProgress struct {
	CellsDone  int `json:"cellsDone"`
	CellsTotal int `json:"cellsTotal"`
}

// sessionInfo describes a session resource in any lifecycle state; the
// guarantee block is present only once the build is ready.
type sessionInfo struct {
	ID          string         `json:"id"`
	Query       string         `json:"query"`
	D           int            `json:"d"`
	Status      string         `json:"status"`
	Progress    *buildProgress `json:"progress,omitempty"`
	BuildError  string         `json:"buildError,omitempty"`
	POSPSize    int            `json:"pospSize,omitempty"`
	Contours    int            `json:"contours,omitempty"`
	PBGuarantee float64        `json:"pbGuarantee,omitempty"`
	SBGuarantee float64        `json:"sbGuarantee,omitempty"`
	ABLow       float64        `json:"abGuaranteeLow,omitempty"`
	ABHigh      float64        `json:"abGuaranteeHigh,omitempty"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	// Brownout stage 3 sheds builds — the most expensive admission — while
	// runs against already-built sessions keep serving.
	if s.Stage() >= 3 {
		s.shedBrownout(w, "build")
		return
	}
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad payload: %w", err))
		return
	}
	sp, ok := workload.ByName(req.Query)
	if !ok {
		s.writeError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("unknown query %q", req.Query))
		return
	}
	// A fleet front door pins the session ID it hashed the placement from;
	// without the header the server allocates its own sequential ID.
	pinned := r.Header.Get(FleetSessionHeader)
	if pinned != "" {
		if err := validSessionID(pinned); err != nil {
			s.writeError(w, http.StatusBadRequest, codeBadRequest, err)
			return
		}
	}
	opts := repro.BenchmarkOptions()
	opts.Workers = s.cfg.BuildWorkers
	switch req.Profile {
	case "", "postgres":
	case "commercial":
		opts.Params = repro.CommercialProfile()
	default:
		s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("unknown profile %q", req.Profile))
		return
	}
	res := sp.GridRes
	if req.GridRes != 0 {
		if req.GridRes < 2 || req.GridRes > 64 {
			s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("gridRes %d outside [2,64]", req.GridRes))
			return
		}
		opts.GridRes = req.GridRes
		res = req.GridRes
	}
	if s.cfg.MaxSessions > 0 {
		s.mu.Lock()
		full := len(s.sessions) >= s.cfg.MaxSessions
		s.mu.Unlock()
		if full {
			// Retry-After tells well-behaved clients when capacity plausibly
			// frees up: the next eviction sweep (see README, API errors),
			// jittered per request so a synchronized burst fans back out.
			s.setRetryAfter(w, s.retryAfterSeconds())
			s.writeError(w, http.StatusTooManyRequests, codeTooManySessions, fmt.Errorf("session limit %d reached; retry after idle sessions expire", s.cfg.MaxSessions))
			return
		}
	}
	// Overload control for the expensive build path: the adaptive build
	// limiter first (a shed there must not consume a breaker probe), then
	// the circuit breaker around the build dependency.
	if !s.buildLimiter.TryAcquire() {
		s.shed(w, "build", "limiter", fmt.Errorf("concurrent session-build limit reached; retry shortly"))
		return
	}
	if !s.breaker.Allow() {
		s.buildLimiter.Cancel()
		// Advertise the REMAINING cooldown, not the full configured one: a
		// circuit opened 25s into a 30s cooldown admits its probe in 5s, and
		// telling clients to stay away for 30 wastes most of a recovery
		// window. RetryAfter is zero only in the Allow/RetryAfter race where
		// the cooldown expired between the two calls — the floor keeps the
		// header honest (retry immediately-ish). Jittered per request so the
		// herd waiting out the cooldown doesn't return as one.
		s.setRetryAfter(w, cooldownSeconds(s.breaker.RetryAfter()))
		s.countShed("build", "breaker")
		s.writeError(w, http.StatusServiceUnavailable, codeOverloaded,
			fmt.Errorf("session builds are failing; circuit open, retry after cooldown"))
		return
	}
	s.metrics.setInflight("build", s.buildLimiter.Inflight())

	ctx, cancel := context.WithCancel(context.Background())
	e := &session{query: sp.Name, d: sp.D, status: statusBuilding, lastUsed: time.Now(), cancel: cancel,
		bulkhead: guard.NewBulkhead(s.cfg.SessionMaxRuns), runs: map[string]*runRecord{}}
	total := 1
	for i := 0; i < sp.D; i++ {
		total *= res
	}
	e.cellsTotal.Store(int64(total))
	opts.BuildProgress = func(done, total int) {
		prev := e.cellsDone.Swap(int64(done))
		e.cellsTotal.Store(int64(total))
		// Counter.Add ignores the negative deltas that out-of-order progress
		// callbacks from concurrent build workers can produce.
		s.metrics.buildCells.Add(float64(int64(done) - prev))
	}

	s.mu.Lock()
	if pinned != "" {
		if _, exists := s.sessions[pinned]; exists {
			s.mu.Unlock()
			cancel()
			s.buildLimiter.Cancel()
			s.metrics.setInflight("build", s.buildLimiter.Inflight())
			// The build dependency was never exercised: release the breaker
			// admission without recording an outcome.
			s.breaker.Forget()
			s.writeError(w, http.StatusConflict, codeBadRequest, fmt.Errorf("session %q already exists", pinned))
			return
		}
		e.id = pinned
	} else {
		s.nextID++
		e.id = fmt.Sprintf("s%d", s.nextID)
	}
	s.sessions[e.id] = e
	s.mu.Unlock()

	if s.cfg.DataDir != "" {
		// Durable session: pin its data directory and persist the creation
		// metadata before the build starts, so a crashed process can recover
		// the session (Recover) even if it dies mid-build.
		e.dataDir = filepath.Join(s.cfg.DataDir, e.id)
		opts.DataDir = e.dataDir
		if pinned != "" {
			// The in-memory duplicate check above only covers THIS process.
			// With a shared fleet data dir, two nodes whose ring views
			// diverged can both accept a create (or a create can race an
			// adoption on another node) for the same pinned ID — so the
			// session directory itself is the cross-node claim: exclusive
			// Mkdir, 409 on EEXIST.
			if err := claimSessionDir(e.dataDir); err != nil {
				s.mu.Lock()
				delete(s.sessions, e.id)
				s.mu.Unlock()
				cancel()
				s.buildLimiter.Cancel()
				s.metrics.setInflight("build", s.buildLimiter.Inflight())
				if os.IsExist(err) {
					// The build dependency was never exercised: release the
					// breaker admission without recording an outcome.
					s.breaker.Forget()
					s.writeError(w, http.StatusConflict, codeBadRequest,
						fmt.Errorf("session %q already exists in the shared data directory", pinned))
					return
				}
				s.breaker.Record(false)
				s.writeError(w, http.StatusInternalServerError, codeInternal, fmt.Errorf("claim session directory: %v", err))
				return
			}
		}
		if err := saveSessionMeta(e.dataDir, sessionMeta{ID: e.id, Query: sp.Name, GridRes: req.GridRes, Profile: req.Profile}); err != nil {
			s.mu.Lock()
			delete(s.sessions, e.id)
			s.mu.Unlock()
			cancel()
			s.buildLimiter.Cancel()
			s.metrics.setInflight("build", s.buildLimiter.Inflight())
			s.breaker.Record(false)
			s.writeError(w, http.StatusInternalServerError, codeInternal, fmt.Errorf("persist session metadata: %v", err))
			return
		}
	}

	// The build belongs to the create request's trace: its per-chunk events
	// record into a dedicated recorder, and the finished build's span tree
	// is stored under the request's trace ID.
	tp, _ := trace.FromContext(r.Context())
	buildRec := telemetry.NewRecorder()

	s.buildWG.Add(1)
	go func() {
		defer s.buildWG.Done()
		defer cancel()
		start := time.Now()
		sess, err := buildSession(telemetry.With(ctx, buildRec), sp, opts)
		s.metrics.buildDuration.ObserveTrace(time.Since(start).Seconds(), tp.TraceID)
		if err == nil {
			s.recordTrace(trace.FromBuild(tp.TraceID, buildRec.Events()))
		}
		s.buildLimiter.Release(err == nil)
		s.metrics.setInflight("build", s.buildLimiter.Inflight())
		if err == nil || !errors.Is(err, context.Canceled) {
			// A build aborted by server shutdown says nothing about the
			// dependency's health; everything else feeds the breaker.
			s.breaker.Record(err == nil)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		e.lastUsed = time.Now()
		if err != nil {
			e.status = statusFailed
			e.buildErr = err
			s.metrics.builds.With("failed").Inc()
			return
		}
		e.sess = sess
		e.status = statusReady
		s.metrics.builds.With("ok").Inc()
	}()

	writeJSON(w, http.StatusAccepted, s.info(e))
}

// cooldownSeconds converts the breaker cooldown into a Retry-After value:
// whole seconds, floor 1 so clients always back off at least briefly.
func cooldownSeconds(d time.Duration) int {
	sec := int(d / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// shed rejects a request refused by overload control: counts it into
// rqp_shed_total and answers 429 with the envelope's overloaded code
// (writeError supplies the Retry-After header).
func (s *Server) shed(w http.ResponseWriter, class, reason string, err error) {
	s.countShed(class, reason)
	s.writeError(w, http.StatusTooManyRequests, codeOverloaded, err)
}

// admitRun passes a run/sweep request through the shared adaptive limiter and
// the session's bulkhead. On admission the returned release must be called
// exactly once with the request's outcome — overload-shaped failures (5xx)
// shrink the adaptive limit, client errors and successes grow it. On refusal
// the 429 is already written and release is nil.
func (s *Server) admitRun(w http.ResponseWriter, e *session) (release func(ok bool), admitted bool) {
	if !s.runLimiter.TryAcquire() {
		s.shed(w, "run", "limiter", fmt.Errorf("concurrent run limit reached; retry shortly"))
		return nil, false
	}
	if !e.bulkhead.TryAcquire() {
		// Roll the limiter slot back without outcome feedback: the refusal is
		// the session's, not a signal about global capacity.
		s.runLimiter.Cancel()
		s.shed(w, "run", "bulkhead", fmt.Errorf("session %s concurrent-run limit reached; retry shortly", e.id))
		return nil, false
	}
	s.metrics.setInflight("run", s.runLimiter.Inflight())
	return func(ok bool) {
		e.bulkhead.Release()
		s.runLimiter.Release(ok)
		s.metrics.setInflight("run", s.runLimiter.Inflight())
	}, true
}

// info snapshots a session resource for the wire. It takes the registry
// lock; callers must not hold it.
func (s *Server) info(e *session) sessionInfo {
	s.mu.Lock()
	status, sess, buildErr := e.status, e.sess, e.buildErr
	s.mu.Unlock()
	out := sessionInfo{ID: e.id, Query: e.query, D: e.d, Status: status}
	switch status {
	case statusReady:
		lo, hi := sess.GuaranteeRangeAB()
		out.POSPSize = sess.POSPSize()
		out.Contours = sess.ContourCount()
		out.PBGuarantee = sess.Guarantee(repro.PlanBouquet)
		out.SBGuarantee = sess.Guarantee(repro.SpillBound)
		out.ABLow, out.ABHigh = lo, hi
	case statusFailed:
		out.BuildError = buildErr.Error()
	default:
		out.Progress = &buildProgress{
			CellsDone:  int(e.cellsDone.Load()),
			CellsTotal: int(e.cellsTotal.Load()),
		}
	}
	return out
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.sessions[id]
	if ok {
		e.lastUsed = time.Now()
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, codeNotFound, fmt.Errorf("no session %q", id))
		return nil, false
	}
	return e, true
}

// ready resolves a looked-up session to its built library session, writing
// a 409 Conflict when the build is still in flight or has failed.
func (s *Server) ready(w http.ResponseWriter, e *session) (*repro.Session, bool) {
	s.mu.Lock()
	status, sess, buildErr := e.status, e.sess, e.buildErr
	s.mu.Unlock()
	switch status {
	case statusReady:
		return sess, true
	case statusFailed:
		s.writeError(w, http.StatusConflict, codeSessionFailed,
			fmt.Errorf("session %s build failed: %v", e.id, buildErr))
	default:
		s.writeError(w, http.StatusConflict, codeSessionBuilding,
			fmt.Errorf("session %s is still building (%d/%d cells); retry when status is %q",
				e.id, e.cellsDone.Load(), e.cellsTotal.Load(), statusReady))
	}
	return nil, false
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if e, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, s.info(e))
	}
}

// runRequest is the POST /v1/sessions/{id}/run payload.
type runRequest struct {
	// Strategy names a registered strategy (see GET /v1/strategies).
	Strategy string `json:"strategy"`
	// Algorithm is the deprecated spelling of Strategy, kept for wire
	// compatibility; requests using it count into
	// rqp_deprecated_requests_total. Strategy wins when both are set.
	Algorithm string `json:"algorithm,omitempty"`
	// Truth is the actual selectivity location (one value per epp).
	Truth []float64 `json:"truth"`
	// Durable checkpoints the run's discovery state at every contour
	// boundary (requires a server started with a data directory); a run
	// interrupted by a process crash is then resumed on recovery instead of
	// being lost. The response carries the run ID.
	Durable bool `json:"durable,omitempty"`
	// RunID names the durable run (optional; the server allocates one when
	// empty). Ignored for non-durable runs.
	RunID string `json:"runId,omitempty"`
	// Scenario names a seeded error-regime scenario ("benign-1",
	// "regret-correlated-2", "adversarial-1", ...) whose fault composition is
	// injected into the run — the server-side hook the traffic-replay harness
	// drives. Empty means a clean run.
	Scenario string `json:"scenario,omitempty"`
	// ScenarioSeed selects the scenario suite the name resolves in
	// (default 1); the same (seed, name) pair denotes the same faults in
	// every process.
	ScenarioSeed int64 `json:"scenarioSeed,omitempty"`
}

// runResponse mirrors repro.RunResult for the wire.
type runResponse struct {
	Algorithm   string  `json:"algorithm"`
	TotalCost   float64 `json:"totalCost"`
	OptimalCost float64 `json:"optimalCost"`
	SubOpt      float64 `json:"subOpt"`
	Guarantee   float64 `json:"guarantee,omitempty"`
	Steps       int     `json:"steps"`
	Trace       string  `json:"trace"`
	// Events is the typed run-event stream the trace is rendered from:
	// contour entries, (spill) executions, half-space prunes, budget spends,
	// retries, degradation, and the terminal summary.
	Events []telemetry.Event `json:"events"`
	// Retries counts the step retry attempts absorbed by the resilience
	// layer during the run.
	Retries int `json:"retries,omitempty"`
	// Degraded reports the run fell back to the Native plan (the guarantee
	// field is then omitted — the MSO bound no longer applies).
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
	// GuardVerdict reports the strongest runtime-guard intervention of the
	// run: "budget_abort", "ess_escape", or empty for a clean run.
	GuardVerdict string `json:"guardVerdict,omitempty"`
	// Scenario echoes the injected error-regime scenario, if any.
	Scenario string `json:"scenario,omitempty"`
	// RunID names the durable run the result belongs to (durable runs only).
	RunID string `json:"runId,omitempty"`
	// Resumed reports the run was rehydrated from a crash checkpoint;
	// TotalCost then spans every process incarnation's checkpointed spend.
	Resumed bool `json:"resumed,omitempty"`
	// TraceID is the run's W3C trace ID (the request's traceparent, or a
	// server-minted one); GET /v1/runs/{traceId}/trace serves the span tree
	// when the trace was sampled.
	TraceID string `json:"traceId,omitempty"`
}

// handleStrategies serves the strategy registry listing: every registered
// strategy's canonical name, kind, guarantee formula, resumability and
// tuning-knob documentation.
func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, repro.Strategies())
}

// resolveStrategy resolves a wire strategy name — the canonical "strategy"
// field/parameter, falling back to the deprecated "algorithm" spelling —
// against the registry. Legacy usage (the old field, alias or mixed-case
// names) is counted into rqp_deprecated_requests_total; an unknown name
// writes the uniform envelope with code "unknown_strategy".
func (s *Server) resolveStrategy(w http.ResponseWriter, strategy, algorithm string) (repro.Algorithm, bool) {
	name := strategy
	if name == "" && algorithm != "" {
		name = algorithm
		s.metrics.deprecated.With("field:algorithm").Inc()
	}
	canonical, legacy, err := repro.ParseStrategyName(name)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeUnknownStrategy, err)
		return "", false
	}
	if legacy {
		s.metrics.deprecated.With("strategy:" + canonical).Inc()
	}
	return repro.Algorithm(canonical), true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	// Brownout stage 4 is the full shed: runs were the last admitted class.
	if s.Stage() >= 4 {
		s.shedBrownout(w, "run")
		return
	}
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sess, ok := s.ready(w, e)
	if !ok {
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad payload: %w", err))
		return
	}
	algo, ok := s.resolveStrategy(w, req.Strategy, req.Algorithm)
	if !ok {
		return
	}
	var fp *repro.FaultPlan
	if req.Scenario != "" {
		seed := req.ScenarioSeed
		if seed == 0 {
			seed = 1
		}
		sc, ok := repro.ScenarioByName(seed, req.Scenario)
		if !ok {
			s.writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Errorf("unknown scenario %q (want <regime>-<n>, e.g. %q)", req.Scenario, "adversarial-1"))
			return
		}
		fp = &sc.Faults
	}
	runID := ""
	if req.Durable {
		if e.dataDir == "" {
			s.writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Errorf("durable runs need a server data directory (rqpd -data)"))
			return
		}
		runID = req.RunID
		if runID == "" {
			s.mu.Lock()
			e.runSeq++
			runID = fmt.Sprintf("r%d", e.runSeq)
			s.mu.Unlock()
		}
	}
	release, admitted := s.admitRun(w, e)
	if !admitted {
		return
	}
	var res repro.RunResult
	var err error
	switch {
	case req.Durable && fp != nil:
		res, err = sess.RunDurableWithFaults(r.Context(), algo, repro.Location(req.Truth), runID, fp)
	case req.Durable:
		res, err = sess.RunDurable(r.Context(), algo, repro.Location(req.Truth), runID)
	case fp != nil:
		res, err = sess.RunWithFaults(r.Context(), algo, repro.Location(req.Truth), fp)
	default:
		res, err = sess.RunContext(r.Context(), algo, repro.Location(req.Truth))
	}
	if err != nil {
		s.metrics.runs.With(algo.String(), "error").Inc()
		status, code := runErrorStatus(err)
		// Only overload-shaped outcomes (timeouts, cancellations → 5xx) shrink
		// the adaptive limit; a validation 400 says nothing about capacity.
		release(status < http.StatusInternalServerError)
		s.writeError(w, status, code, err)
		return
	}
	release(true)
	s.metrics.observeRun(algo.String(), res.Degraded, res.Retries, res.SubOpt, res.TraceID)
	s.metrics.observeGuard(res.GuardVerdict)
	s.recordTrace(trace.FromRun(res.TraceID, res.Events))
	resp := s.buildRunResponse(sess, algo, res)
	resp.Scenario = req.Scenario
	if req.Durable {
		s.recordRun(e, res, resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildRunResponse converts a library run result to the wire form and
// accounts its durable checkpoint events.
func (s *Server) buildRunResponse(sess *repro.Session, algo repro.Algorithm, res repro.RunResult) *runResponse {
	resp := &runResponse{
		Algorithm: algo.String(), TotalCost: res.TotalCost,
		OptimalCost: res.OptimalCost, SubOpt: res.SubOpt,
		Steps: len(res.Steps), Trace: res.Trace, Events: res.Events,
		Retries:  res.Retries,
		Degraded: res.Degraded, DegradedReason: res.DegradedReason,
		GuardVerdict: res.GuardVerdict,
		RunID:        res.RunID, Resumed: res.Resumed,
		TraceID: res.TraceID,
	}
	if g := sess.Guarantee(algo); g < 1e300 && !res.Degraded {
		resp.Guarantee = g
	}
	for _, ev := range res.Events {
		if ev.Kind == telemetry.CheckpointSave {
			s.metrics.checkpoints.Inc()
		}
	}
	return resp
}

// recordRun retains a durable run's completed result in the session's
// in-memory run table, backing the run resources.
func (s *Server) recordRun(e *session, res repro.RunResult, resp *runResponse) {
	s.mu.Lock()
	e.runs[res.RunID] = &runRecord{status: runCompleted, resumed: res.Resumed, resp: resp}
	s.mu.Unlock()
}

// sweepResponse mirrors repro.SweepSummary.
type sweepResponse struct {
	Algorithm string    `json:"algorithm"`
	MSO       float64   `json:"mso"`
	ASO       float64   `json:"aso"`
	Locations int       `json:"locations"`
	Worst     []float64 `json:"worstLocation"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	// Brownout stage 2 sheds the expensive read surface: a sweep is
	// Locations-many runs in one request.
	if s.Stage() >= 2 {
		s.shedBrownout(w, "run")
		return
	}
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sess, ok := s.ready(w, e)
	if !ok {
		return
	}
	algo, ok := s.resolveStrategy(w, r.URL.Query().Get("strategy"), r.URL.Query().Get("algorithm"))
	if !ok {
		return
	}
	max := 0
	var err error
	if v := r.URL.Query().Get("max"); v != "" {
		max, err = strconv.Atoi(v)
		if err != nil || max < 0 {
			s.writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad max %q", v))
			return
		}
	}
	release, admitted := s.admitRun(w, e)
	if !admitted {
		return
	}
	sum, err := sess.SweepContext(r.Context(), algo, max)
	if err != nil {
		s.metrics.runs.With(algo.String(), "error").Inc()
		status, code := runErrorStatus(err)
		if status == http.StatusBadRequest {
			status, code = http.StatusInternalServerError, codeInternal
		}
		release(status < http.StatusInternalServerError)
		s.writeError(w, status, code, err)
		return
	}
	release(true)
	// A sweep is Locations individual runs; its MSO and ASO are observed
	// sub-optimalities (the worst and the average), so both feed the
	// distribution the /v1/metrics histogram exposes.
	s.metrics.runs.With(algo.String(), "sweep").Add(float64(sum.Locations))
	s.metrics.subOpt.Observe(sum.MSO)
	s.metrics.subOpt.Observe(sum.ASO)
	s.metrics.maxSub.SetMax(sum.MSO)
	writeJSON(w, http.StatusOK, sweepResponse{
		Algorithm: algo.String(), MSO: sum.MSO, ASO: sum.ASO,
		Locations: sum.Locations, Worst: sum.WorstLocation,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
