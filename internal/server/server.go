// Package server exposes the robust query processing library over HTTP —
// the "automated assistant" deployment direction the paper sketches in its
// conclusions: a service that owns the expensive offline ESS constructions
// (Sec 7) and answers per-instance processing requests with guarantees,
// traces and robustness metrics.
//
//	POST /sessions                  {"query":"4D_Q91","gridRes":8}
//	GET  /sessions/{id}             session metadata + guarantees
//	POST /sessions/{id}/run         {"algorithm":"spillbound","truth":[0.8,0.008,0.05,0.6]}
//	GET  /sessions/{id}/sweep?algorithm=spillbound&max=200
//	GET  /queries                   benchmark query list
//	GET  /healthz
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	repro "repro"
	"repro/internal/workload"
)

// Config tunes the server's operational guards. The zero value disables all
// of them (useful in tests that exercise unbounded behaviour).
type Config struct {
	// RequestTimeout is the per-request deadline attached to every request
	// context; run/sweep handlers pass it into the library, so an expired
	// budget aborts the discovery mid-contour. 0 disables.
	RequestTimeout time.Duration
	// SessionTTL evicts sessions idle for longer than this. 0 disables
	// eviction (the map then grows without bound, as before).
	SessionTTL time.Duration
	// EvictInterval is how often the eviction sweep runs (defaults to
	// SessionTTL/4 when unset and a TTL is configured).
	EvictInterval time.Duration
	// MaxSessions rejects new session creation past this registry size
	// (0 = unlimited), bounding the memory a burst of builds can pin.
	MaxSessions int
}

// DefaultConfig returns the production guard rails: 30s request budget,
// 30min idle session TTL, at most 256 live sessions.
func DefaultConfig() Config {
	return Config{
		RequestTimeout: 30 * time.Second,
		SessionTTL:     30 * time.Minute,
		MaxSessions:    256,
	}
}

// Server is the HTTP handler set with its session registry.
type Server struct {
	cfg      Config
	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	evictQ   chan struct{} // closed to stop the eviction loop
	evictWG  sync.WaitGroup
}

type session struct {
	id       string
	query    string
	d        int
	sess     *repro.Session
	lastUsed time.Time
}

// New returns an empty server with no operational guards (zero Config).
func New() *Server {
	return NewWithConfig(Config{})
}

// NewWithConfig returns an empty server with the given guard configuration.
func NewWithConfig(cfg Config) *Server {
	return &Server{cfg: cfg, sessions: make(map[string]*session)}
}

// Handler returns the routed http.Handler wrapped with the resilience
// middleware: panic recovery (structured JSON 500), per-request timeout,
// and request body limits.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /queries", s.handleQueries)
	mux.HandleFunc("POST /sessions", s.handleCreateSession)
	mux.HandleFunc("GET /sessions/{id}", s.handleGetSession)
	mux.HandleFunc("POST /sessions/{id}/run", s.handleRun)
	mux.HandleFunc("GET /sessions/{id}/sweep", s.handleSweep)
	return recoverMiddleware(timeoutMiddleware(s.cfg.RequestTimeout, limitBodyMiddleware(mux)))
}

// StartEviction launches the background sweep that drops sessions idle for
// longer than the configured TTL. It is a no-op when no TTL is set. Stop
// with Close.
func (s *Server) StartEviction() {
	if s.cfg.SessionTTL <= 0 || s.evictQ != nil {
		return
	}
	interval := s.cfg.EvictInterval
	if interval <= 0 {
		interval = s.cfg.SessionTTL / 4
	}
	s.evictQ = make(chan struct{})
	s.evictWG.Add(1)
	go func() {
		defer s.evictWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.EvictIdle(time.Now())
			case <-s.evictQ:
				return
			}
		}
	}()
}

// EvictIdle drops every session idle at the given instant for longer than
// the TTL, returning how many were evicted. Exposed for deterministic
// tests; the background sweep calls it with time.Now().
func (s *Server) EvictIdle(now time.Time) int {
	if s.cfg.SessionTTL <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, e := range s.sessions {
		if now.Sub(e.lastUsed) > s.cfg.SessionTTL {
			delete(s.sessions, id)
			n++
		}
	}
	return n
}

// SessionCount reports the live session registry size.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close stops the eviction sweep (if running) and waits for it.
func (s *Server) Close() {
	if s.evictQ != nil {
		close(s.evictQ)
		s.evictWG.Wait()
		s.evictQ = nil
	}
}

// queryInfo is one /queries entry.
type queryInfo struct {
	Name    string `json:"name"`
	D       int    `json:"d"`
	Catalog string `json:"catalog"`
	GridRes int    `json:"gridRes"`
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	var out []queryInfo
	for _, sp := range workload.TPCDSQueries() {
		out = append(out, queryInfo{Name: sp.Name, D: sp.D, Catalog: sp.Catalog, GridRes: sp.GridRes})
	}
	for _, sp := range []workload.Spec{workload.Q91(2), workload.JOB1a(), workload.EQ()} {
		out = append(out, queryInfo{Name: sp.Name, D: sp.D, Catalog: sp.Catalog, GridRes: sp.GridRes})
	}
	writeJSON(w, http.StatusOK, out)
}

// createRequest is the POST /sessions payload.
type createRequest struct {
	// Query names a benchmark query (see /queries).
	Query string `json:"query"`
	// GridRes overrides the recommended grid resolution (0 = default).
	GridRes int `json:"gridRes"`
	// Profile selects the cost profile: "postgres" (default) or
	// "commercial".
	Profile string `json:"profile"`
}

// sessionInfo describes a built session.
type sessionInfo struct {
	ID          string  `json:"id"`
	Query       string  `json:"query"`
	D           int     `json:"d"`
	POSPSize    int     `json:"pospSize"`
	Contours    int     `json:"contours"`
	PBGuarantee float64 `json:"pbGuarantee"`
	SBGuarantee float64 `json:"sbGuarantee"`
	ABLow       float64 `json:"abGuaranteeLow"`
	ABHigh      float64 `json:"abGuaranteeHigh"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad payload: %w", err))
		return
	}
	sp, ok := workload.ByName(req.Query)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown query %q", req.Query))
		return
	}
	opts := repro.BenchmarkOptions()
	switch req.Profile {
	case "", "postgres":
	case "commercial":
		opts.Params = repro.CommercialProfile()
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown profile %q", req.Profile))
		return
	}
	if req.GridRes != 0 {
		if req.GridRes < 2 || req.GridRes > 64 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("gridRes %d outside [2,64]", req.GridRes))
			return
		}
		opts.GridRes = req.GridRes
	}
	if s.cfg.MaxSessions > 0 {
		s.mu.Lock()
		full := len(s.sessions) >= s.cfg.MaxSessions
		s.mu.Unlock()
		if full {
			writeError(w, http.StatusTooManyRequests, fmt.Errorf("session limit %d reached; retry after idle sessions expire", s.cfg.MaxSessions))
			return
		}
	}
	sess, err := repro.NewBenchmarkSession(sp, opts)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	entry := &session{id: id, query: sp.Name, d: sess.D(), sess: sess, lastUsed: time.Now()}
	s.sessions[id] = entry
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, s.info(entry))
}

func (s *Server) info(e *session) sessionInfo {
	lo, hi := e.sess.GuaranteeRangeAB()
	return sessionInfo{
		ID: e.id, Query: e.query, D: e.d,
		POSPSize: e.sess.POSPSize(), Contours: e.sess.ContourCount(),
		PBGuarantee: e.sess.Guarantee(repro.PlanBouquet),
		SBGuarantee: e.sess.Guarantee(repro.SpillBound),
		ABLow:       lo, ABHigh: hi,
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.sessions[id]
	if ok {
		e.lastUsed = time.Now()
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return nil, false
	}
	return e, true
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if e, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, s.info(e))
	}
}

// runRequest is the POST /sessions/{id}/run payload.
type runRequest struct {
	// Algorithm names the strategy (see repro.ParseAlgorithm).
	Algorithm string `json:"algorithm"`
	// Truth is the actual selectivity location (one value per epp).
	Truth []float64 `json:"truth"`
}

// runResponse mirrors repro.RunResult for the wire.
type runResponse struct {
	Algorithm   string  `json:"algorithm"`
	TotalCost   float64 `json:"totalCost"`
	OptimalCost float64 `json:"optimalCost"`
	SubOpt      float64 `json:"subOpt"`
	Guarantee   float64 `json:"guarantee,omitempty"`
	Steps       int     `json:"steps"`
	Trace       string  `json:"trace"`
	// Degraded reports the run fell back to the Native plan (the guarantee
	// field is then omitted — the MSO bound no longer applies).
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad payload: %w", err))
		return
	}
	algo, err := repro.ParseAlgorithm(strings.ToLower(req.Algorithm))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := e.sess.RunContext(r.Context(), algo, repro.Location(req.Truth))
	if err != nil {
		writeError(w, statusForRunError(err), err)
		return
	}
	resp := runResponse{
		Algorithm: algo.String(), TotalCost: res.TotalCost,
		OptimalCost: res.OptimalCost, SubOpt: res.SubOpt,
		Steps: len(res.Steps), Trace: res.Trace,
		Degraded: res.Degraded, DegradedReason: res.DegradedReason,
	}
	if g := e.sess.Guarantee(algo); g < 1e300 && !res.Degraded {
		resp.Guarantee = g
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweepResponse mirrors repro.SweepSummary.
type sweepResponse struct {
	Algorithm string    `json:"algorithm"`
	MSO       float64   `json:"mso"`
	ASO       float64   `json:"aso"`
	Locations int       `json:"locations"`
	Worst     []float64 `json:"worstLocation"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	algo, err := repro.ParseAlgorithm(strings.ToLower(r.URL.Query().Get("algorithm")))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	max := 0
	if v := r.URL.Query().Get("max"); v != "" {
		max, err = strconv.Atoi(v)
		if err != nil || max < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad max %q", v))
			return
		}
	}
	sum, err := e.sess.SweepContext(r.Context(), algo, max)
	if err != nil {
		status := statusForRunError(err)
		if status == http.StatusBadRequest {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, sweepResponse{
		Algorithm: algo.String(), MSO: sum.MSO, ASO: sum.ASO,
		Locations: sum.Locations, Worst: sum.WorstLocation,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
