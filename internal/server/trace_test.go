package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

const testTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// postTraced posts JSON with a caller-supplied Traceparent header.
func postTraced(t *testing.T, url, traceparent string, payload any) (*http.Response, map[string]any) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestTraceMiddlewareEchoMintAndMalformed(t *testing.T) {
	ts := testServer(t)

	// A valid inbound traceparent is joined: the response echoes it and
	// X-Request-ID is its trace ID.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set("Traceparent", testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Traceparent"); got != testTraceparent {
		t.Errorf("echoed traceparent %q, want %q", got, testTraceparent)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("X-Request-ID = %q, want the inbound trace ID", got)
	}

	// No header and a malformed header both mint a fresh valid trace.
	for _, inbound := range []string{"", "garbage", "00-zzzz-0000-01"} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
		if inbound != "" {
			req.Header.Set("Traceparent", inbound)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		tp, err := trace.Parse(resp.Header.Get("Traceparent"))
		if err != nil {
			t.Fatalf("inbound %q: response traceparent %q invalid: %v",
				inbound, resp.Header.Get("Traceparent"), err)
		}
		if tp.TraceID == "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("inbound %q joined instead of restarting the trace", inbound)
		}
		if resp.Header.Get("X-Request-ID") != tp.TraceID {
			t.Errorf("X-Request-ID %q != trace ID %q", resp.Header.Get("X-Request-ID"), tp.TraceID)
		}
	}
}

func TestRunTraceEndpoint(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})

	resp, run := postTraced(t, ts.URL+"/v1/sessions/"+id+"/run", testTraceparent, map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %v", resp.StatusCode, run)
	}
	traceID, _ := run["traceId"].(string)
	if traceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("run traceId = %q, want the caller's trace ID", traceID)
	}

	// JSON: a run tree rooted at the caller's trace.
	var tree struct {
		TraceID string `json:"traceId"`
		Kind    string `json:"kind"`
		Spans   int    `json:"spans"`
		Root    *trace.Span
	}
	if r := getJSON(t, ts.URL+"/v1/runs/"+traceID+"/trace", &tree); r.StatusCode != http.StatusOK {
		t.Fatalf("get trace status %d", r.StatusCode)
	}
	if tree.TraceID != traceID || tree.Kind != trace.KindRun || tree.Root == nil || tree.Spans < 2 {
		t.Fatalf("trace tree = kind %q spans %d traceId %q", tree.Kind, tree.Spans, tree.TraceID)
	}

	// SVG: the flamegraph rendering with its content type.
	svgResp, err := http.Get(ts.URL + "/v1/runs/" + traceID + "/trace?format=svg")
	if err != nil {
		t.Fatal(err)
	}
	defer svgResp.Body.Close()
	if ct := svgResp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("svg content type %q", ct)
	}

	// Unknown formats are a 400, unknown traces a 404 that still carries the
	// in-band trace ID for correlation.
	var bad map[string]any
	if r := getJSON(t, ts.URL+"/v1/runs/"+traceID+"/trace?format=bogus", &bad); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format status %d", r.StatusCode)
	}
	var missing map[string]any
	r := getJSON(t, ts.URL+"/v1/runs/"+strings.Repeat("0", 31)+"1/trace", &missing)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace status %d", r.StatusCode)
	}
	env, _ := missing["error"].(map[string]any)
	if env == nil || env["traceId"] != r.Header.Get("X-Request-ID") {
		t.Errorf("error envelope traceId %v != X-Request-ID %q", env, r.Header.Get("X-Request-ID"))
	}
}

func TestBuildTraceEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, created := postTraced(t, ts.URL+"/v1/sessions", testTraceparent, map[string]any{
		"query": "2D_EQ", "gridRes": 6,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create status %d: %v", resp.StatusCode, created)
	}
	awaitReady(t, ts.URL, created["id"].(string))

	var tree struct {
		Kind  string `json:"kind"`
		Spans int    `json:"spans"`
	}
	if r := getJSON(t, ts.URL+"/v1/runs/4bf92f3577b34da6a3ce929d0e0e4736/trace", &tree); r.StatusCode != http.StatusOK {
		t.Fatalf("get build trace status %d", r.StatusCode)
	}
	if tree.Kind != trace.KindBuild || tree.Spans < 2 {
		t.Errorf("build tree kind %q spans %d", tree.Kind, tree.Spans)
	}
}

func TestTraceSampling(t *testing.T) {
	// Negative disables retention entirely; the run itself is unaffected.
	srv, ts := overloadServer(t, Config{TraceSample: -1})
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})
	resp, run := postTraced(t, ts.URL+"/v1/sessions/"+id+"/run", testTraceparent, map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %v", resp.StatusCode, run)
	}
	if run["traceId"] != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("unsampled run lost its traceId: %v", run["traceId"])
	}
	if n := srv.traces.len(); n != 0 {
		t.Errorf("trace store holds %d trees with sampling disabled", n)
	}
	var missing map[string]any
	if r := getJSON(t, ts.URL+"/v1/runs/4bf92f3577b34da6a3ce929d0e0e4736/trace", &missing); r.StatusCode != http.StatusNotFound {
		t.Errorf("unsampled trace served with status %d", r.StatusCode)
	}

	// The zero config keeps everything (observability by default).
	if rate := (&Server{}).sampleRate(); rate != 1 {
		t.Errorf("zero-config sample rate = %g, want 1", rate)
	}
}

func TestTraceStoreFIFOAndReplacement(t *testing.T) {
	ts := newTraceStore(2)
	mk := func(i int) *trace.Tree {
		return trace.FromRun(strings.Repeat("0", 30)+strconv.Itoa(10+i), []telemetry.Event{
			{Kind: telemetry.Done, Algorithm: "spillbound", TotalCost: float64(i), Dim: -1},
		})
	}
	a, b, c := mk(0), mk(1), mk(2)
	ts.put(a)
	ts.put(b)
	ts.put(c)
	if ts.len() != 2 {
		t.Fatalf("store holds %d trees, want cap 2", ts.len())
	}
	if _, ok := ts.get(a.TraceID); ok {
		t.Error("oldest trace not evicted")
	}
	if _, ok := ts.get(c.TraceID); !ok {
		t.Error("newest trace missing")
	}

	// A resumed incarnation replaces its trace in place: same ID, no
	// eviction, no duplicate FIFO entry.
	b2 := trace.FromRun(b.TraceID, []telemetry.Event{
		{Kind: telemetry.RunResume, Detail: "r1", Spent: 5, Dim: -1},
		{Kind: telemetry.Done, Algorithm: "spillbound", TotalCost: 9, Dim: -1},
	})
	ts.put(b2)
	if ts.len() != 2 {
		t.Errorf("replacement grew the store to %d", ts.len())
	}
	got, _ := ts.get(b.TraceID)
	if got != b2 {
		t.Error("replacement did not take")
	}
	if len(ts.order) != 2 {
		t.Errorf("FIFO order has %d entries, want 2", len(ts.order))
	}

	// nil and empty-ID trees are ignored.
	ts.put(nil)
	ts.put(&trace.Tree{})
	if ts.len() != 2 {
		t.Errorf("nil/empty put changed the store: %d", ts.len())
	}
}

func TestShedCarriesRequestID(t *testing.T) {
	srv, ts := overloadServer(t, Config{MaxConcurrentRuns: 1})
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})
	if !srv.runLimiter.TryAcquire() {
		t.Fatal("could not pre-fill the run limiter")
	}
	defer srv.runLimiter.Release(true)

	resp, body := postTraced(t, ts.URL+"/v1/sessions/"+id+"/run", testTraceparent, map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429: %v", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("shed X-Request-ID = %q, want the caller's trace ID", got)
	}
	if got := resp.Header.Get("Traceparent"); got != testTraceparent {
		t.Errorf("shed traceparent = %q", got)
	}
	env, _ := body["error"].(map[string]any)
	if env == nil || env["traceId"] != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("shed envelope traceId = %v", env)
	}
}

func TestTraceMiddlewareUnit(t *testing.T) {
	// The middleware exposes the traceparent on the request context.
	srv := New()
	defer srv.Close()
	var got trace.Traceparent
	var ok bool
	h := srv.traceMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, ok = trace.FromContext(r.Context())
	}))
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set("Traceparent", testTraceparent)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if !ok || got.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || !got.Sampled {
		t.Errorf("context traceparent = %+v, %v", got, ok)
	}
}
