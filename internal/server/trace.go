// Server-side tracing: the traceparent middleware (every request joins or
// starts a W3C trace; the response echoes the traceparent and an
// X-Request-ID so even 429/503/504 sheds are correlatable), the bounded
// in-memory trace store behind GET /v1/runs/{id}/trace, and head sampling.

package server

import (
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/trace"
	"repro/internal/viz"
)

// traceStoreCap bounds the in-memory trace store: a FIFO of the most recent
// sampled traces, enough for dashboards and smokes to follow an exemplar
// without letting a long-lived daemon grow without bound.
const traceStoreCap = 512

// traceStore is the bounded trace-ID → span-tree map.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	order []string // insertion order for FIFO eviction
	trees map[string]*trace.Tree
}

func newTraceStore(capacity int) *traceStore {
	return &traceStore{cap: capacity, trees: make(map[string]*trace.Tree)}
}

// put stores (or, for a resumed run's incarnation, replaces) a trace.
func (ts *traceStore) put(t *trace.Tree) {
	if t == nil || t.TraceID == "" {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, exists := ts.trees[t.TraceID]; !exists {
		ts.order = append(ts.order, t.TraceID)
		for len(ts.order) > ts.cap {
			delete(ts.trees, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	ts.trees[t.TraceID] = t
}

// get looks a trace up by ID.
func (ts *traceStore) get(id string) (*trace.Tree, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.trees[id]
	return t, ok
}

// len reports the stored trace count.
func (ts *traceStore) len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.trees)
}

// sampleRate resolves the configured head-sampling rate: the zero Config
// keeps every trace (observability by default), negative keeps none.
func (s *Server) sampleRate() float64 {
	switch {
	case s.cfg.TraceSample == 0:
		return 1
	case s.cfg.TraceSample < 0:
		return 0
	}
	return s.cfg.TraceSample
}

// keepTrace decides retention for a trace, deterministically from its ID —
// except under brownout (stage ≥ 1), where sampling drops to zero: trace
// retention is the first optional work to go when the node is degrading.
func (s *Server) keepTrace(traceID string) bool {
	if s.Stage() >= 1 {
		return false
	}
	return trace.Sample(traceID, s.sampleRate())
}

// recordTrace derives nothing — it stores an already-derived tree, counts
// its spans, and is a no-op for unsampled traces. The fleet membership
// timeline is exempt from sampling and the brownout drop: it is one
// bounded singleton tree, not per-request volume, and it is exactly the
// trace that explains a brownout episode after the fact.
func (s *Server) recordTrace(t *trace.Tree) {
	if t == nil {
		return
	}
	if t.Kind != trace.KindFleet && !s.keepTrace(t.TraceID) {
		return
	}
	s.traces.put(t)
	s.metrics.traceSpans.Add(float64(t.Spans))
}

// traceMiddleware gives every request a trace identity before any handler
// (or shed path) runs: an inbound traceparent header is joined, anything
// else starts a fresh trace. The response always carries the Traceparent
// header and an X-Request-ID (the trace ID) — set eagerly, so overload
// rejections and panics are just as correlatable as successes — and the
// request context carries the Traceparent for handlers and instrumentation.
func (s *Server) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tp, err := trace.Parse(r.Header.Get("Traceparent"))
		if r.Header.Get("Traceparent") == "" || err != nil {
			// Per trace-context semantics a malformed header restarts the
			// trace rather than failing the request.
			tp = trace.New()
		}
		w.Header().Set("Traceparent", tp.Header())
		w.Header().Set("X-Request-ID", tp.TraceID)
		next.ServeHTTP(w, r.WithContext(trace.WithContext(r.Context(), tp)))
	})
}

// handleGetTrace serves GET /v1/runs/{id}/trace: the span tree of a
// sampled run (or session build) by trace ID, as JSON or, with format=svg,
// as a flamegraph.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.traces.get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, codeNotFound,
			fmt.Errorf("no trace %q (not sampled, evicted, or never recorded)", id))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		b, err := t.JSON()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	case "svg":
		w.Header().Set("Content-Type", "image/svg+xml")
		_, _ = io.WriteString(w, viz.Flamegraph(t))
	default:
		s.writeError(w, http.StatusBadRequest, codeBadRequest,
			fmt.Errorf("unknown trace format %q (want json or svg)", format))
	}
}
