package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestAtlasEndpoint(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})

	var atlas struct {
		Query   string   `json:"query"`
		NX      int      `json:"nx"`
		NY      int      `json:"ny"`
		Regimes []string `json:"regimes"`
		Maps    []struct {
			Algorithm string    `json:"algorithm"`
			Regime    string    `json:"regime"`
			MSO       float64   `json:"mso"`
			SubOpt    []float64 `json:"subopt"`
			Verdict   []string  `json:"verdict"`
		} `json:"maps"`
	}
	resp := getJSON(t, ts.URL+"/v1/atlas?session="+id+"&algorithms=spillbound&seed=5&max=9", &atlas)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("atlas status %d", resp.StatusCode)
	}
	if atlas.NX != 6 || atlas.NY != 6 || len(atlas.Regimes) != 3 {
		t.Fatalf("atlas shape: %dx%d regimes=%v", atlas.NX, atlas.NY, atlas.Regimes)
	}
	if atlas.Query != "2D_EQ" {
		t.Errorf("atlas query label = %q, want the benchmark name 2D_EQ", atlas.Query)
	}
	if len(atlas.Maps) != 3 {
		t.Fatalf("%d maps, want 3 (one algorithm x three regimes)", len(atlas.Maps))
	}
	escapes := 0
	for _, m := range atlas.Maps {
		if m.Algorithm != "spillbound" || len(m.SubOpt) != 36 || len(m.Verdict) != 36 {
			t.Fatalf("map shape off: %+v", m)
		}
		if m.MSO < 1 {
			t.Errorf("%s: MSO %g < 1", m.Regime, m.MSO)
		}
		for _, v := range m.Verdict {
			if v == "ess_escape" {
				escapes++
			}
		}
	}
	if escapes == 0 {
		t.Error("no ess_escape overlay anywhere; adversarial-1 should force escapes")
	}

	svgResp, err := http.Get(ts.URL + "/v1/atlas?session=" + id + "&algorithms=spillbound&max=4&format=svg")
	if err != nil {
		t.Fatal(err)
	}
	defer svgResp.Body.Close()
	body, _ := io.ReadAll(svgResp.Body)
	if svgResp.StatusCode != http.StatusOK {
		t.Fatalf("svg status %d: %s", svgResp.StatusCode, body)
	}
	if ct := svgResp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("svg content type %q", ct)
	}
	if !strings.HasPrefix(string(body), "<svg ") || !strings.Contains(string(body), "robustness atlas") {
		t.Errorf("svg body malformed: %.120s", body)
	}
}

func TestAtlasEndpointValidation(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})
	cases := []struct {
		url    string
		status int
		code   string
	}{
		{"/v1/atlas", http.StatusBadRequest, "bad_request"},
		{"/v1/atlas?session=nope", http.StatusNotFound, "not_found"},
		{"/v1/atlas?session=" + id + "&algorithms=quantum", http.StatusBadRequest, "unknown_strategy"},
		{"/v1/atlas?session=" + id + "&strategies=quantum", http.StatusBadRequest, "unknown_strategy"},
		{"/v1/atlas?session=" + id + "&seed=x", http.StatusBadRequest, "bad_request"},
		{"/v1/atlas?session=" + id + "&perRegime=99", http.StatusBadRequest, "bad_request"},
		{"/v1/atlas?session=" + id + "&max=-1", http.StatusBadRequest, "bad_request"},
		{"/v1/atlas?session=" + id + "&format=png", http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		var body map[string]any
		resp := getJSON(t, ts.URL+tc.url, &body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%v)", tc.url, resp.StatusCode, tc.status, body)
			continue
		}
		if code, _ := errEnvelope(t, body); code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.url, code, tc.code)
		}
	}
	// Non-2D sessions cannot be mapped.
	id3 := createSession(t, ts.URL, map[string]any{"query": "3D_Q91", "gridRes": 4})
	var body map[string]any
	resp := getJSON(t, ts.URL+"/v1/atlas?session="+id3, &body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("3D atlas status %d, want 400", resp.StatusCode)
	}
}

func TestRunWithScenario(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})

	// adversarial-1 is escape-scale monitoring skew for every seed: a
	// spillbound run must complete via the safe path with the verdict on the
	// wire and the scenario echoed.
	resp, out := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.02, 0.3},
		"scenario": "adversarial-1", "scenarioSeed": 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario run status %d: %v", resp.StatusCode, out)
	}
	if out["guardVerdict"] != "ess_escape" {
		t.Errorf("guardVerdict = %v, want ess_escape", out["guardVerdict"])
	}
	if out["scenario"] != "adversarial-1" {
		t.Errorf("scenario echo = %v", out["scenario"])
	}

	// regret-correlated-1 always overruns budgets: the watchdog must abort.
	resp, out = postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.02, 0.3},
		"scenario": "regret-correlated-1",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario run status %d: %v", resp.StatusCode, out)
	}
	if out["guardVerdict"] != "budget_abort" {
		t.Errorf("guardVerdict = %v, want budget_abort", out["guardVerdict"])
	}

	// Unknown scenario names are a client error.
	resp, out = postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.02, 0.3}, "scenario": "chaotic-1",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario status %d: %v", resp.StatusCode, out)
	}
	if code, _ := errEnvelope(t, out); code != "bad_request" {
		t.Errorf("code %q", code)
	}

	// Clean runs stay clean: no verdict, no scenario echo.
	resp, out = postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.02, 0.3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean run status %d: %v", resp.StatusCode, out)
	}
	if _, present := out["guardVerdict"]; present {
		t.Errorf("clean run carries guardVerdict: %v", out["guardVerdict"])
	}
}
