package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, payload any) (*http.Response, map[string]any) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	var out map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, out)
	}
}

func TestQueriesList(t *testing.T) {
	ts := testServer(t)
	var out []map[string]any
	resp := getJSON(t, ts.URL+"/queries", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	names := map[string]bool{}
	for _, q := range out {
		names[q["name"].(string)] = true
	}
	for _, want := range []string{"4D_Q91", "JOB_1a", "2D_EQ", "2D_Q91"} {
		if !names[want] {
			t.Errorf("missing %s in /queries", want)
		}
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts := testServer(t)
	resp, created := postJSON(t, ts.URL+"/sessions", map[string]any{
		"query": "2D_EQ", "gridRes": 8,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %v", resp.StatusCode, created)
	}
	id := created["id"].(string)
	if created["sbGuarantee"].(float64) != 10 {
		t.Errorf("sbGuarantee = %v", created["sbGuarantee"])
	}
	if created["d"].(float64) != 2 {
		t.Errorf("d = %v", created["d"])
	}

	// Fetch it back.
	var info map[string]any
	if r := getJSON(t, ts.URL+"/sessions/"+id, &info); r.StatusCode != http.StatusOK {
		t.Fatalf("get session status %d", r.StatusCode)
	}
	if info["query"] != "2D_EQ" {
		t.Errorf("query = %v", info["query"])
	}

	// Run SpillBound.
	resp, run := postJSON(t, ts.URL+"/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.001, 0.0005},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %v", resp.StatusCode, run)
	}
	subOpt := run["subOpt"].(float64)
	if subOpt < 1 || subOpt > 10 {
		t.Errorf("subOpt = %v, want within (1,10]", subOpt)
	}
	if !strings.Contains(run["trace"].(string), "IC") {
		t.Errorf("trace missing contours: %v", run["trace"])
	}

	// Sweep.
	var sweep map[string]any
	if r := getJSON(t, fmt.Sprintf("%s/sessions/%s/sweep?algorithm=alignedbound&max=20", ts.URL, id), &sweep); r.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %v", r.StatusCode, sweep)
	}
	if sweep["mso"].(float64) > 10 {
		t.Errorf("AB sweep MSO %v above bound", sweep["mso"])
	}
	if sweep["locations"].(float64) != 20 {
		t.Errorf("locations = %v", sweep["locations"])
	}
}

func TestErrorPaths(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		method, path string
		payload      any
		wantStatus   int
	}{
		{"POST", "/sessions", map[string]any{"query": "NOPE"}, http.StatusNotFound},
		{"POST", "/sessions", map[string]any{"query": "2D_EQ", "gridRes": 1}, http.StatusBadRequest},
		{"POST", "/sessions", map[string]any{"query": "2D_EQ", "profile": "oracle"}, http.StatusBadRequest},
		{"GET", "/sessions/zzz", nil, http.StatusNotFound},
		{"POST", "/sessions/zzz/run", map[string]any{"algorithm": "spillbound", "truth": []float64{0.5, 0.5}}, http.StatusNotFound},
		{"GET", "/sessions/zzz/sweep?algorithm=spillbound", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		var resp *http.Response
		if tc.method == "POST" {
			resp, _ = postJSON(t, ts.URL+tc.path, tc.payload)
		} else {
			var out map[string]any
			resp = getJSON(t, ts.URL+tc.path, &out)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestRunValidation(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	id := created["id"].(string)
	cases := []map[string]any{
		{"algorithm": "teleport", "truth": []float64{0.5, 0.5}},
		{"algorithm": "spillbound", "truth": []float64{0.5}},
		{"algorithm": "spillbound", "truth": []float64{0.5, 2.0}},
	}
	for _, payload := range cases {
		resp, body := postJSON(t, ts.URL+"/sessions/"+id+"/run", payload)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %v: status %d (%v)", payload, resp.StatusCode, body)
		}
	}
}

// TestBadPayloadsYield4xx proves untrusted request data — malformed JSON,
// unknown names, wrong-arity or out-of-range truth vectors — never reaches
// a panic path: every case is a clean 4xx, not a 500.
func TestBadPayloadsYield4xx(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	id := created["id"].(string)

	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"malformed JSON create", "POST", "/sessions", `{"query": `, http.StatusBadRequest},
		{"malformed JSON run", "POST", "/sessions/" + id + "/run", `not json at all`, http.StatusBadRequest},
		{"unknown query", "POST", "/sessions", `{"query":"Q_NOPE"}`, http.StatusNotFound},
		{"unknown algorithm", "POST", "/sessions/" + id + "/run", `{"algorithm":"quantum","truth":[0.5,0.5]}`, http.StatusBadRequest},
		{"truth arity low", "POST", "/sessions/" + id + "/run", `{"algorithm":"spillbound","truth":[0.5]}`, http.StatusBadRequest},
		{"truth arity high", "POST", "/sessions/" + id + "/run", `{"algorithm":"spillbound","truth":[0.5,0.5,0.5]}`, http.StatusBadRequest},
		{"truth out of range", "POST", "/sessions/" + id + "/run", `{"algorithm":"spillbound","truth":[0.5,7]}`, http.StatusBadRequest},
		{"truth zero", "POST", "/sessions/" + id + "/run", `{"algorithm":"spillbound","truth":[0,0.5]}`, http.StatusBadRequest},
		{"sweep on missing session", "GET", "/sessions/ghost/sweep?algorithm=spillbound", "", http.StatusNotFound},
		{"sweep bad algorithm", "GET", "/sessions/" + id + "/sweep?algorithm=psychic", "", http.StatusBadRequest},
		{"sweep bad max", "GET", "/sessions/" + id + "/sweep?algorithm=spillbound&max=-3", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.method == "POST" {
				resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			} else {
				resp, err = http.Get(ts.URL + tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if resp.StatusCode >= 500 {
				t.Fatalf("bad input produced a server error (%d)", resp.StatusCode)
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if body["error"] == "" {
				t.Fatal("error body missing message")
			}
		})
	}
}

// TestPanicRecoveryMiddleware proves a panicking handler is converted into
// a structured JSON 500 instead of tearing the connection down.
func TestPanicRecoveryMiddleware(t *testing.T) {
	h := recoverMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("operator bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("500 body not JSON: %v (%q)", err, rec.Body.String())
	}
	if !strings.Contains(body["error"], "operator bug") {
		t.Fatalf("error = %q", body["error"])
	}
}

// TestRequestTimeoutAbortsRun proves an in-flight run is aborted via
// context cancellation when the per-request deadline expires, yielding a
// 504 rather than a hang.
func TestRequestTimeoutAbortsRun(t *testing.T) {
	srv := NewWithConfig(Config{RequestTimeout: time.Nanosecond})
	// Build the session through a guard-free server sharing the registry:
	// creation must succeed, only the run should hit the deadline.
	srv.cfg.RequestTimeout = 0
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	id := created["id"].(string)
	ts.Close()

	srv.cfg.RequestTimeout = time.Nanosecond
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	start := time.Now()
	resp, body := postJSON(t, ts2.URL+"/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.001, 0.0005},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%v), want 504", resp.StatusCode, body)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("aborting took %v", took)
	}
	if !strings.Contains(fmt.Sprint(body["error"]), "deadline") {
		t.Errorf("error = %v", body["error"])
	}
}

// TestSessionTTLEviction proves idle sessions are dropped after the TTL and
// subsequent requests get a clean 404.
func TestSessionTTLEviction(t *testing.T) {
	srv := NewWithConfig(Config{SessionTTL: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	id := created["id"].(string)

	if n := srv.EvictIdle(time.Now()); n != 0 {
		t.Fatalf("fresh session evicted (%d)", n)
	}
	if n := srv.EvictIdle(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if srv.SessionCount() != 0 {
		t.Fatalf("registry size %d", srv.SessionCount())
	}
	var out map[string]any
	if r := getJSON(t, ts.URL+"/sessions/"+id, &out); r.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session fetch = %d, want 404", r.StatusCode)
	}
}

// TestEvictionLoopLifecycle starts and stops the background sweep (the
// -race run guards the registry's concurrent access).
func TestEvictionLoopLifecycle(t *testing.T) {
	srv := NewWithConfig(Config{SessionTTL: 20 * time.Millisecond, EvictInterval: 5 * time.Millisecond})
	srv.StartEviction()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("background sweep left %d sessions", n)
	}
	srv.Close()
}

// TestMaxSessionsGuard proves the registry cap rejects creation with 429.
func TestMaxSessionsGuard(t *testing.T) {
	srv := NewWithConfig(Config{MaxSessions: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if resp, _ := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create = %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create = %d (%v), want 429", resp.StatusCode, body)
	}
}

// TestDegradedRunReportsDowngrade drives a run whose engine is sabotaged by
// a fault plan through the HTTP layer indirectly: since the wire API does
// not expose fault injection, this asserts the response shape only — a
// clean run reports no degradation fields.
func TestDegradedFieldsAbsentOnCleanRun(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	id := created["id"].(string)
	_, run := postJSON(t, ts.URL+"/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.01, 0.02},
	})
	if _, present := run["degraded"]; present {
		t.Errorf("clean run carries degraded flag: %v", run)
	}
}

func TestNativeRunHasNoGuaranteeField(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	id := created["id"].(string)
	resp, run := postJSON(t, ts.URL+"/sessions/"+id+"/run", map[string]any{
		"algorithm": "native", "truth": []float64{0.01, 0.01},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, run)
	}
	if _, present := run["guarantee"]; present {
		t.Error("native run should omit the guarantee field")
	}
}
