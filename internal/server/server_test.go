package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/workload"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, payload any) (*http.Response, map[string]any) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
	return resp
}

// errEnvelope extracts the {"error":{"code","message"}} envelope from a
// decoded body, failing the test when the shape is wrong.
func errEnvelope(t *testing.T, body map[string]any) (code, message string) {
	t.Helper()
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("error body is not the envelope shape: %v", body)
	}
	code, _ = env["code"].(string)
	message, _ = env["message"].(string)
	if code == "" || message == "" {
		t.Fatalf("envelope missing code/message: %v", env)
	}
	return code, message
}

// awaitReady polls the session resource until its status is ready,
// asserting progress is monotone along the way.
func awaitReady(t *testing.T, baseURL, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	lastDone := -1.0
	for time.Now().Before(deadline) {
		var info map[string]any
		resp := getJSON(t, baseURL+"/v1/sessions/"+id, &info)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get session status %d: %v", resp.StatusCode, info)
		}
		switch info["status"] {
		case "ready":
			return info
		case "failed":
			t.Fatalf("session build failed: %v", info["buildError"])
		case "building":
			if prog, ok := info["progress"].(map[string]any); ok {
				done := prog["cellsDone"].(float64)
				total := prog["cellsTotal"].(float64)
				if done < lastDone {
					t.Fatalf("progress went backwards: %v -> %v", lastDone, done)
				}
				if done > total {
					t.Fatalf("progress overshot: %v/%v", done, total)
				}
				lastDone = done
			}
		default:
			t.Fatalf("unknown status %v", info["status"])
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("session never became ready")
	return nil
}

// createSession accepts the async create (202) and waits until ready.
func createSession(t *testing.T, baseURL string, payload map[string]any) string {
	t.Helper()
	resp, created := postJSON(t, baseURL+"/v1/sessions", payload)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create status %d: %v", resp.StatusCode, created)
	}
	id := created["id"].(string)
	awaitReady(t, baseURL, id)
	return id
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		var out map[string]string
		resp := getJSON(t, ts.URL+path, &out)
		if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
			t.Fatalf("%s = %d %v", path, resp.StatusCode, out)
		}
	}
}

func TestQueriesList(t *testing.T) {
	ts := testServer(t)
	var out []map[string]any
	resp := getJSON(t, ts.URL+"/v1/queries", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	names := map[string]bool{}
	for _, q := range out {
		names[q["name"].(string)] = true
	}
	for _, want := range []string{"4D_Q91", "JOB_1a", "2D_EQ", "2D_Q91"} {
		if !names[want] {
			t.Errorf("missing %s in /v1/queries", want)
		}
	}
}

// TestAsyncSessionLifecycle drives the v1 build lifecycle end to end:
// POST returns 202 with a building (or already ready) status, GET observes
// monotone progress into ready, and the ready resource carries guarantees.
func TestAsyncSessionLifecycle(t *testing.T) {
	ts := testServer(t)
	resp, created := postJSON(t, ts.URL+"/v1/sessions", map[string]any{
		"query": "2D_EQ", "gridRes": 8,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create status %d: %v", resp.StatusCode, created)
	}
	if st := created["status"]; st != "building" && st != "ready" {
		t.Fatalf("created status = %v", st)
	}
	id := created["id"].(string)
	info := awaitReady(t, ts.URL, id)
	if info["sbGuarantee"].(float64) != 10 {
		t.Errorf("sbGuarantee = %v", info["sbGuarantee"])
	}
	if info["d"].(float64) != 2 {
		t.Errorf("d = %v", info["d"])
	}
	if info["query"] != "2D_EQ" {
		t.Errorf("query = %v", info["query"])
	}

	// Run SpillBound.
	resp, run := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.001, 0.0005},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %v", resp.StatusCode, run)
	}
	subOpt := run["subOpt"].(float64)
	if subOpt < 1 || subOpt > 10 {
		t.Errorf("subOpt = %v, want within (1,10]", subOpt)
	}
	if !strings.Contains(run["trace"].(string), "IC") {
		t.Errorf("trace missing contours: %v", run["trace"])
	}

	// Sweep.
	var sweep map[string]any
	if r := getJSON(t, fmt.Sprintf("%s/v1/sessions/%s/sweep?algorithm=alignedbound&max=20", ts.URL, id), &sweep); r.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %v", r.StatusCode, sweep)
	}
	if sweep["mso"].(float64) > 10 {
		t.Errorf("AB sweep MSO %v above bound", sweep["mso"])
	}
	if sweep["locations"].(float64) != 20 {
		t.Errorf("locations = %v", sweep["locations"])
	}
}

// TestLegacyAliasesServeV1Handlers proves the deprecated unversioned paths
// remain live aliases of the v1 handlers: a session created through the
// legacy path is visible through /v1 and vice versa.
func TestLegacyAliasesServeV1Handlers(t *testing.T) {
	ts := testServer(t)
	resp, created := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy create status %d: %v", resp.StatusCode, created)
	}
	id := created["id"].(string)
	awaitReady(t, ts.URL, id)
	var legacy map[string]any
	if r := getJSON(t, ts.URL+"/sessions/"+id, &legacy); r.StatusCode != http.StatusOK {
		t.Fatalf("legacy get = %d", r.StatusCode)
	}
	if legacy["status"] != "ready" {
		t.Errorf("legacy status = %v", legacy["status"])
	}
	resp, run := postJSON(t, ts.URL+"/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.01, 0.02},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy run status %d: %v", resp.StatusCode, run)
	}
}

// TestRunWhileBuildingConflicts gates the build behind a channel and proves
// run/sweep against the building session return 409 with the
// session_building code, then succeed once the build is released.
func TestRunWhileBuildingConflicts(t *testing.T) {
	gate := make(chan struct{})
	orig := buildSession
	buildSession = func(ctx context.Context, bq workload.Spec, opts repro.Options) (*repro.Session, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return orig(ctx, bq, opts)
	}
	t.Cleanup(func() { buildSession = orig })

	ts := testServer(t)
	resp, created := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create status %d: %v", resp.StatusCode, created)
	}
	id := created["id"].(string)
	if created["status"] != "building" {
		t.Fatalf("status = %v, want building", created["status"])
	}
	if prog, ok := created["progress"].(map[string]any); !ok || prog["cellsTotal"].(float64) != 36 {
		t.Errorf("progress = %v, want cellsTotal 36", created["progress"])
	}

	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.01, 0.02},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("run while building = %d (%v), want 409", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != "session_building" {
		t.Errorf("code = %q, want session_building", code)
	}

	var sweep map[string]any
	if r := getJSON(t, ts.URL+"/v1/sessions/"+id+"/sweep?algorithm=spillbound", &sweep); r.StatusCode != http.StatusConflict {
		t.Fatalf("sweep while building = %d, want 409", r.StatusCode)
	}

	close(gate)
	awaitReady(t, ts.URL, id)
	resp, run := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.01, 0.02},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after ready = %d (%v)", resp.StatusCode, run)
	}
}

// TestFailedBuildReportsConflict substitutes a failing build and proves the
// session lands in failed with the error surfaced, and run returns 409 with
// the session_failed code.
func TestFailedBuildReportsConflict(t *testing.T) {
	orig := buildSession
	buildSession = func(ctx context.Context, bq workload.Spec, opts repro.Options) (*repro.Session, error) {
		return nil, fmt.Errorf("synthetic build explosion")
	}
	t.Cleanup(func() { buildSession = orig })

	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	id := created["id"].(string)

	deadline := time.Now().Add(10 * time.Second)
	var info map[string]any
	for time.Now().Before(deadline) {
		getJSON(t, ts.URL+"/v1/sessions/"+id, &info)
		if info["status"] == "failed" {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if info["status"] != "failed" {
		t.Fatalf("status = %v, want failed", info["status"])
	}
	if !strings.Contains(fmt.Sprint(info["buildError"]), "synthetic build explosion") {
		t.Errorf("buildError = %v", info["buildError"])
	}
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.01, 0.02},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("run on failed session = %d, want 409", resp.StatusCode)
	}
	if code, _ := errEnvelope(t, body); code != "session_failed" {
		t.Errorf("code = %q, want session_failed", code)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		method, path string
		payload      any
		wantStatus   int
		wantCode     string
	}{
		{"POST", "/v1/sessions", map[string]any{"query": "NOPE"}, http.StatusNotFound, "not_found"},
		{"POST", "/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 1}, http.StatusBadRequest, "bad_request"},
		{"POST", "/v1/sessions", map[string]any{"query": "2D_EQ", "profile": "oracle"}, http.StatusBadRequest, "bad_request"},
		{"GET", "/v1/sessions/zzz", nil, http.StatusNotFound, "not_found"},
		{"POST", "/v1/sessions/zzz/run", map[string]any{"algorithm": "spillbound", "truth": []float64{0.5, 0.5}}, http.StatusNotFound, "not_found"},
		{"GET", "/v1/sessions/zzz/sweep?algorithm=spillbound", nil, http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		var resp *http.Response
		var body map[string]any
		if tc.method == "POST" {
			resp, body = postJSON(t, ts.URL+tc.path, tc.payload)
		} else {
			resp = getJSON(t, ts.URL+tc.path, &body)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
			continue
		}
		if code, _ := errEnvelope(t, body); code != tc.wantCode {
			t.Errorf("%s %s code = %q, want %q", tc.method, tc.path, code, tc.wantCode)
		}
	}
}

func TestRunValidation(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})
	cases := []struct {
		payload  map[string]any
		wantCode string
	}{
		{map[string]any{"algorithm": "teleport", "truth": []float64{0.5, 0.5}}, "unknown_strategy"},
		{map[string]any{"strategy": "teleport", "truth": []float64{0.5, 0.5}}, "unknown_strategy"},
		{map[string]any{"strategy": "spillbound", "truth": []float64{0.5}}, "bad_request"},
		{map[string]any{"algorithm": "spillbound", "truth": []float64{0.5, 2.0}}, "bad_request"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", tc.payload)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %v: status %d (%v)", tc.payload, resp.StatusCode, body)
			continue
		}
		if code, _ := errEnvelope(t, body); code != tc.wantCode {
			t.Errorf("payload %v: code %q, want %q", tc.payload, code, tc.wantCode)
		}
	}
}

// TestBadPayloadsYield4xx proves untrusted request data — malformed JSON,
// unknown names, wrong-arity or out-of-range truth vectors — never reaches
// a panic path: every case is a clean 4xx carrying the uniform error
// envelope, not a 500.
func TestBadPayloadsYield4xx(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})

	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"malformed JSON create", "POST", "/v1/sessions", `{"query": `, http.StatusBadRequest},
		{"malformed JSON run", "POST", "/v1/sessions/" + id + "/run", `not json at all`, http.StatusBadRequest},
		{"unknown query", "POST", "/v1/sessions", `{"query":"Q_NOPE"}`, http.StatusNotFound},
		{"unknown algorithm", "POST", "/v1/sessions/" + id + "/run", `{"algorithm":"quantum","truth":[0.5,0.5]}`, http.StatusBadRequest},
		{"truth arity low", "POST", "/v1/sessions/" + id + "/run", `{"algorithm":"spillbound","truth":[0.5]}`, http.StatusBadRequest},
		{"truth arity high", "POST", "/v1/sessions/" + id + "/run", `{"algorithm":"spillbound","truth":[0.5,0.5,0.5]}`, http.StatusBadRequest},
		{"truth out of range", "POST", "/v1/sessions/" + id + "/run", `{"algorithm":"spillbound","truth":[0.5,7]}`, http.StatusBadRequest},
		{"truth zero", "POST", "/v1/sessions/" + id + "/run", `{"algorithm":"spillbound","truth":[0,0.5]}`, http.StatusBadRequest},
		{"sweep on missing session", "GET", "/v1/sessions/ghost/sweep?algorithm=spillbound", "", http.StatusNotFound},
		{"sweep bad algorithm", "GET", "/v1/sessions/" + id + "/sweep?algorithm=psychic", "", http.StatusBadRequest},
		{"sweep bad max", "GET", "/v1/sessions/" + id + "/sweep?algorithm=spillbound&max=-3", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.method == "POST" {
				resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			} else {
				resp, err = http.Get(ts.URL + tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if resp.StatusCode >= 500 {
				t.Fatalf("bad input produced a server error (%d)", resp.StatusCode)
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			errEnvelope(t, body)
		})
	}
}

// TestPanicRecoveryMiddleware proves a panicking handler is converted into
// a structured JSON 500 carrying the error envelope instead of tearing the
// connection down.
func TestPanicRecoveryMiddleware(t *testing.T) {
	h := New().recoverMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("operator bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("500 body not JSON: %v (%q)", err, rec.Body.String())
	}
	code, msg := errEnvelope(t, body)
	if code != "internal" || !strings.Contains(msg, "operator bug") {
		t.Fatalf("envelope = %q %q", code, msg)
	}
}

// TestRequestTimeoutAbortsRun proves an in-flight run is aborted via
// context cancellation when the per-request deadline expires, yielding a
// 504 rather than a hang. Session creation is unaffected: it is async and
// builds on a background context.
func TestRequestTimeoutAbortsRun(t *testing.T) {
	srv := NewWithConfig(Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})
	ts.Close()

	srv.cfg.RequestTimeout = time.Nanosecond
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	start := time.Now()
	resp, body := postJSON(t, ts2.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.001, 0.0005},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%v), want 504", resp.StatusCode, body)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("aborting took %v", took)
	}
	code, msg := errEnvelope(t, body)
	if code != "timeout" || !strings.Contains(msg, "deadline") {
		t.Errorf("envelope = %q %q", code, msg)
	}
}

// TestSessionTTLEviction proves idle ready sessions are dropped after the
// TTL and subsequent requests get a clean 404.
func TestSessionTTLEviction(t *testing.T) {
	srv := NewWithConfig(Config{SessionTTL: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})

	if n := srv.EvictIdle(time.Now()); n != 0 {
		t.Fatalf("fresh session evicted (%d)", n)
	}
	if n := srv.EvictIdle(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if srv.SessionCount() != 0 {
		t.Fatalf("registry size %d", srv.SessionCount())
	}
	var out map[string]any
	if r := getJSON(t, ts.URL+"/v1/sessions/"+id, &out); r.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session fetch = %d, want 404", r.StatusCode)
	}
}

// TestEvictionSkipsBuildingSessions gates a build and proves the TTL sweep
// leaves the building session alone however stale its lastUsed looks.
func TestEvictionSkipsBuildingSessions(t *testing.T) {
	gate := make(chan struct{})
	orig := buildSession
	buildSession = func(ctx context.Context, bq workload.Spec, opts repro.Options) (*repro.Session, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return orig(ctx, bq, opts)
	}
	t.Cleanup(func() { buildSession = orig })

	srv := NewWithConfig(Config{SessionTTL: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if n := srv.EvictIdle(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("evicted %d building sessions, want 0", n)
	}
	close(gate)
}

// TestEvictionLoopLifecycle starts and stops the background sweep (the
// -race run guards the registry's concurrent access).
func TestEvictionLoopLifecycle(t *testing.T) {
	srv := NewWithConfig(Config{SessionTTL: 20 * time.Millisecond, EvictInterval: 5 * time.Millisecond})
	srv.StartEviction()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("background sweep left %d sessions", n)
	}
	srv.Close()
}

// TestMaxSessionsGuard proves the registry cap rejects creation with 429
// (building sessions count against the cap the moment they are accepted).
func TestMaxSessionsGuard(t *testing.T) {
	srv := NewWithConfig(Config{MaxSessions: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first create = %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second create = %d (%v), want 429", resp.StatusCode, body)
	}
	if code, _ := errEnvelope(t, body); code != "too_many_sessions" {
		t.Errorf("code = %q", code)
	}
}

// TestDegradedFieldsAbsentOnCleanRun asserts the response shape of a clean
// run: no degradation fields.
func TestDegradedFieldsAbsentOnCleanRun(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})
	_, run := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.01, 0.02},
	})
	if _, present := run["degraded"]; present {
		t.Errorf("clean run carries degraded flag: %v", run)
	}
}

func TestNativeRunHasNoGuaranteeField(t *testing.T) {
	ts := testServer(t)
	id := createSession(t, ts.URL, map[string]any{"query": "2D_EQ", "gridRes": 6})
	resp, run := postJSON(t, ts.URL+"/v1/sessions/"+id+"/run", map[string]any{
		"algorithm": "native", "truth": []float64{0.01, 0.01},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, run)
	}
	if _, present := run["guarantee"]; present {
		t.Error("native run should omit the guarantee field")
	}
}

// TestCloseCancelsInFlightBuilds gates a build, closes the server, and
// proves Close returns (the build context is canceled rather than leaked).
func TestCloseCancelsInFlightBuilds(t *testing.T) {
	orig := buildSession
	buildSession = func(ctx context.Context, bq workload.Spec, opts repro.Options) (*repro.Session, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	t.Cleanup(func() { buildSession = orig })

	srv := New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})

	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an in-flight build")
	}
}
