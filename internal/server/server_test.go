package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, payload any) (*http.Response, map[string]any) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	var out map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, out)
	}
}

func TestQueriesList(t *testing.T) {
	ts := testServer(t)
	var out []map[string]any
	resp := getJSON(t, ts.URL+"/queries", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	names := map[string]bool{}
	for _, q := range out {
		names[q["name"].(string)] = true
	}
	for _, want := range []string{"4D_Q91", "JOB_1a", "2D_EQ", "2D_Q91"} {
		if !names[want] {
			t.Errorf("missing %s in /queries", want)
		}
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts := testServer(t)
	resp, created := postJSON(t, ts.URL+"/sessions", map[string]any{
		"query": "2D_EQ", "gridRes": 8,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d: %v", resp.StatusCode, created)
	}
	id := created["id"].(string)
	if created["sbGuarantee"].(float64) != 10 {
		t.Errorf("sbGuarantee = %v", created["sbGuarantee"])
	}
	if created["d"].(float64) != 2 {
		t.Errorf("d = %v", created["d"])
	}

	// Fetch it back.
	var info map[string]any
	if r := getJSON(t, ts.URL+"/sessions/"+id, &info); r.StatusCode != http.StatusOK {
		t.Fatalf("get session status %d", r.StatusCode)
	}
	if info["query"] != "2D_EQ" {
		t.Errorf("query = %v", info["query"])
	}

	// Run SpillBound.
	resp, run := postJSON(t, ts.URL+"/sessions/"+id+"/run", map[string]any{
		"algorithm": "spillbound", "truth": []float64{0.001, 0.0005},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d: %v", resp.StatusCode, run)
	}
	subOpt := run["subOpt"].(float64)
	if subOpt < 1 || subOpt > 10 {
		t.Errorf("subOpt = %v, want within (1,10]", subOpt)
	}
	if !strings.Contains(run["trace"].(string), "IC") {
		t.Errorf("trace missing contours: %v", run["trace"])
	}

	// Sweep.
	var sweep map[string]any
	if r := getJSON(t, fmt.Sprintf("%s/sessions/%s/sweep?algorithm=alignedbound&max=20", ts.URL, id), &sweep); r.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %v", r.StatusCode, sweep)
	}
	if sweep["mso"].(float64) > 10 {
		t.Errorf("AB sweep MSO %v above bound", sweep["mso"])
	}
	if sweep["locations"].(float64) != 20 {
		t.Errorf("locations = %v", sweep["locations"])
	}
}

func TestErrorPaths(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		method, path string
		payload      any
		wantStatus   int
	}{
		{"POST", "/sessions", map[string]any{"query": "NOPE"}, http.StatusNotFound},
		{"POST", "/sessions", map[string]any{"query": "2D_EQ", "gridRes": 1}, http.StatusBadRequest},
		{"POST", "/sessions", map[string]any{"query": "2D_EQ", "profile": "oracle"}, http.StatusBadRequest},
		{"GET", "/sessions/zzz", nil, http.StatusNotFound},
		{"POST", "/sessions/zzz/run", map[string]any{"algorithm": "spillbound", "truth": []float64{0.5, 0.5}}, http.StatusNotFound},
		{"GET", "/sessions/zzz/sweep?algorithm=spillbound", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		var resp *http.Response
		if tc.method == "POST" {
			resp, _ = postJSON(t, ts.URL+tc.path, tc.payload)
		} else {
			var out map[string]any
			resp = getJSON(t, ts.URL+tc.path, &out)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestRunValidation(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	id := created["id"].(string)
	cases := []map[string]any{
		{"algorithm": "teleport", "truth": []float64{0.5, 0.5}},
		{"algorithm": "spillbound", "truth": []float64{0.5}},
		{"algorithm": "spillbound", "truth": []float64{0.5, 2.0}},
	}
	for _, payload := range cases {
		resp, body := postJSON(t, ts.URL+"/sessions/"+id+"/run", payload)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %v: status %d (%v)", payload, resp.StatusCode, body)
		}
	}
}

func TestNativeRunHasNoGuaranteeField(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]any{"query": "2D_EQ", "gridRes": 6})
	id := created["id"].(string)
	resp, run := postJSON(t, ts.URL+"/sessions/"+id+"/run", map[string]any{
		"algorithm": "native", "truth": []float64{0.01, 0.01},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, run)
	}
	if _, present := run["guarantee"]; present {
		t.Error("native run should omit the guarantee field")
	}
}
