package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/guard"
)

// forceStage walks an enabled brownout controller to the wanted stage by
// feeding saturated fleet pressure through the real tick path.
func forceStage(t *testing.T, s *Server, want int) {
	t.Helper()
	s.SetFleetPressure(func() float64 { return 1.0 })
	for i := s.Stage(); i < want; i++ {
		s.brownoutTick()
	}
	s.SetFleetPressure(nil)
	if got := s.Stage(); got != want {
		t.Fatalf("forced stage %d, got %d", want, got)
	}
}

func brownoutServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewWithConfig(Config{Brownout: true})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestBrownoutDropsTraceSamplingAtStageOne(t *testing.T) {
	srv, _ := brownoutServer(t)
	id := "deadbeefdeadbeefdeadbeefdeadbeef"
	if !srv.keepTrace(id) {
		t.Fatal("stage 0 with zero Config must keep every trace")
	}
	forceStage(t, srv, 1)
	if srv.keepTrace(id) {
		t.Fatal("stage 1 must drop trace sampling")
	}
}

func TestBrownoutStageTwoShedsSweepAndAtlas(t *testing.T) {
	srv, ts := brownoutServer(t)
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	forceStage(t, srv, 1)
	// One stage below the gate: requests reach their handlers (404/400 from
	// validation, not 503 from the brownout).
	if resp := get("/v1/sessions/nope/sweep?strategy=spillbound"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stage 1 sweep: status %d, want 404 (handler reached)", resp.StatusCode)
	}
	if resp := get("/v1/atlas"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stage 1 atlas: status %d, want 400 (handler reached)", resp.StatusCode)
	}

	forceStage(t, srv, 2)
	for _, path := range []string{"/v1/sessions/nope/sweep?strategy=spillbound", "/v1/atlas"} {
		resp := get(path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("stage 2 %s: status %d, want 503", path, resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 3 {
			// Hint base is stage+1 = 3; jitter only adds.
			t.Fatalf("stage 2 %s: Retry-After %q, want ≥ 3", path, resp.Header.Get("Retry-After"))
		}
	}
	// Runs and creates still serve at stage 2 (reach their handlers).
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 4}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stage 2 create: status %d, want 202", resp.StatusCode)
	}
	if v := srv.metrics.shed.With("run", "brownout").Value(); v != 2 {
		t.Fatalf("rqp_shed_total{run,brownout} = %v, want 2", v)
	}
}

func TestBrownoutStageThreeShedsBuildsKeepsRuns(t *testing.T) {
	srv, ts := brownoutServer(t)
	forceStage(t, srv, 3)
	resp, body := postJSON(t, ts.URL+"/v1/sessions", map[string]any{"query": "2D_EQ", "gridRes": 4})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stage 3 create: status %d, want 503", resp.StatusCode)
	}
	if code, msg := errEnvelope(t, body); code != codeOverloaded || !strings.Contains(msg, "brownout") {
		t.Fatalf("stage 3 create envelope: %q %q", code, msg)
	}
	// Runs still reach their handler (404 — no such session — not 503).
	r, err := http.Post(ts.URL+"/v1/sessions/nope/run", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("stage 3 run: status %d, want 404 (still admitted)", r.StatusCode)
	}
}

func TestBrownoutStageFourShedsRuns(t *testing.T) {
	srv, ts := brownoutServer(t)
	forceStage(t, srv, 4)
	r, err := http.Post(ts.URL+"/v1/sessions/nope/run", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stage 4 run: status %d, want 503", r.StatusCode)
	}
	// The observability surface must survive a full shed.
	for _, path := range []string{"/v1/healthz", "/v1/metrics", "/v1/debug/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stage 4 %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestBrownoutDisabledStaysStageZero is the single-node invariant: without
// Config.Brownout the controller is nil, the stage is pinned at 0, the
// gauge renders 0, and StartBrownout is a no-op.
func TestBrownoutDisabledStaysStageZero(t *testing.T) {
	srv := NewWithConfig(DefaultConfig())
	t.Cleanup(srv.Close)
	srv.StartBrownout()
	if srv.brownoutQ != nil {
		t.Fatal("StartBrownout launched a loop with brownout disabled")
	}
	srv.SetFleetPressure(func() float64 { return 1.0 })
	srv.brownoutTick() // must not panic, must not move the stage
	if srv.Stage() != 0 {
		t.Fatalf("stage %d, want 0", srv.Stage())
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "rqp_brownout_stage 0") {
		t.Fatal("rqp_brownout_stage gauge missing or non-zero on a single-node server")
	}
}

// TestBrownoutStageTransitionHook proves the observer fires on every
// transition with the (from, to) pair, both ascending and descending.
func TestBrownoutStageTransitionHook(t *testing.T) {
	srv := NewWithConfig(Config{Brownout: true, BrownoutConfig: guard.BrownoutConfig{DwellTicks: 1}})
	t.Cleanup(srv.Close)
	var hops [][2]int
	srv.OnBrownoutStage(func(from, to int) { hops = append(hops, [2]int{from, to}) })

	srv.SetFleetPressure(func() float64 { return 0.6 })
	srv.brownoutTick()
	srv.SetFleetPressure(func() float64 { return 0 })
	srv.brownoutTick()
	want := [][2]int{{0, 1}, {1, 0}}
	if len(hops) != len(want) {
		t.Fatalf("hook fired %d times: %v", len(hops), hops)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hop %d = %v, want %v", i, hops[i], want[i])
		}
	}
}

// TestVitalsSnapshot checks the gossiped shape reflects limiter/breaker
// configuration and that the shed-rate window derives a non-zero rate
// after a burst of rejections.
func TestVitalsSnapshot(t *testing.T) {
	srv := NewWithConfig(Config{MaxConcurrentRuns: 8, MaxConcurrentBuilds: 2, BreakerThreshold: 3, BreakerCooldown: time.Second})
	t.Cleanup(srv.Close)
	v := srv.Vitals()
	if v.RunLimit != 8 || v.BuildLimit != 2 {
		t.Fatalf("limits %v/%v, want 8/2", v.RunLimit, v.BuildLimit)
	}
	if v.Goroutines <= 0 || v.HeapBytes == 0 {
		t.Fatalf("process vitals not populated: %+v", v)
	}
	if v.RetryAfterHint < 1 {
		t.Fatalf("RetryAfterHint %d, want ≥ 1", v.RetryAfterHint)
	}

	srv.shedRate() // initialize the window
	for i := 0; i < 50; i++ {
		srv.countShed("run", "limiter")
	}
	time.Sleep(shedRateWindow + 50*time.Millisecond)
	if rate := srv.Vitals().ShedRate; rate <= 0 {
		t.Fatalf("shed rate %v after 50 sheds, want > 0", rate)
	}
}
