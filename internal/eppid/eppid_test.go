package eppid

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/workload"
)

func TestRankCoversAllJoins(t *testing.T) {
	cat := catalog.TPCDS(100)
	for _, sp := range workload.TPCDSQueries() {
		q, err := sp.Build(cat)
		if err != nil {
			t.Fatal(err)
		}
		scores := Rank(q)
		if len(scores) != len(q.Joins) {
			t.Fatalf("%s: %d scores for %d joins", sp.Name, len(scores), len(q.Joins))
		}
		seen := map[int]bool{}
		for i, s := range scores {
			if seen[s.JoinID] {
				t.Fatalf("%s: duplicate join %d", sp.Name, s.JoinID)
			}
			seen[s.JoinID] = true
			if s.Total < 0 {
				t.Errorf("%s: negative score %v", sp.Name, s)
			}
			if i > 0 && scores[i-1].Total < s.Total {
				t.Errorf("%s: scores not descending at %d", sp.Name, i)
			}
		}
	}
}

func TestIdentifyClamps(t *testing.T) {
	cat := catalog.TPCDS(100)
	q, err := workload.Q91(4).Build(cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := Identify(q, 3); len(got) != 3 {
		t.Errorf("Identify(3) = %v", got)
	}
	if got := Identify(q, 0); len(got) != len(q.Joins) {
		t.Errorf("Identify(0) should select all joins, got %d", len(got))
	}
	if got := Identify(q, 99); len(got) != len(q.Joins) {
		t.Errorf("Identify(99) should clamp, got %d", len(got))
	}
}

// TestIdentifyFindsDesignatedEPPs is the plausibility check: on the
// benchmark suite, the paper-designated epps (all joins of the fact-table
// star) should rank clearly above trivially-estimable predicates. We check
// that the top-D identified joins overlap the designated epps on most suite
// queries.
func TestIdentifyFindsDesignatedEPPs(t *testing.T) {
	cat := catalog.TPCDS(100)
	totalHits, totalEPPs := 0, 0
	for _, sp := range workload.TPCDSQueries() {
		q, err := sp.Build(cat)
		if err != nil {
			t.Fatal(err)
		}
		top := Identify(q, q.D())
		designated := map[int]bool{}
		for _, id := range q.EPPs {
			designated[id] = true
		}
		for _, id := range top {
			if designated[id] {
				totalHits++
			}
		}
		totalEPPs += q.D()
	}
	recall := float64(totalHits) / float64(totalEPPs)
	t.Logf("designated-epp recall over the suite: %.0f%%", recall*100)
	if recall < 0.5 {
		t.Errorf("heuristic recall %.0f%% below 50%%", recall*100)
	}
}

func TestDeterminism(t *testing.T) {
	cat := catalog.TPCDS(100)
	q, err := workload.Q91(6).Build(cat)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Identify(q, 4), Identify(q, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Identify not deterministic")
		}
	}
}
