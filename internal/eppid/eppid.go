// Package eppid implements the pragmatic error-prone-predicate
// identification the paper defers to deployment (Sec 7): "we could leverage
// application domain knowledge and query logs to make this selection, or
// simply be conservative and assign all uncertain combination of predicates
// to be epps". Without logs, the package scores each join predicate's
// error-proneness from catalog statistics using the classic root causes of
// estimation error (coarse statistics, attribute-value-independence,
// error propagation through the join tree):
//
//   - volume: joins over large inputs amplify absolute errors;
//   - NDV mismatch: the containment assumption behind 1/max(NDV) estimates
//     degrades as the two sides' domains diverge;
//   - propagation depth: predicates evaluated above filtered inputs compound
//     upstream errors (each filter contributes AVI risk).
package eppid

import (
	"math"
	"sort"

	"repro/internal/query"
)

// Score is one join predicate's error-proneness assessment.
type Score struct {
	// JoinID identifies the predicate in the query's join list.
	JoinID int
	// Total is the combined score; higher means more error-prone.
	Total float64
	// Volume, Mismatch and Propagation are the component scores.
	Volume, Mismatch, Propagation float64
}

// Rank scores every join predicate of the query and returns the scores in
// descending error-proneness order (ties broken by join ID for
// determinism).
func Rank(q *query.Query) []Score {
	scores := make([]Score, 0, len(q.Joins))
	for _, j := range q.Joins {
		lt := q.Relations[j.LeftRel].Table
		rt := q.Relations[j.RightRel].Table

		// Volume: joins over big inputs dominate the plan's cost and are
		// where estimation errors hurt; log-scaled product of sides.
		volume := math.Log10(float64(lt.Rows)+1) + math.Log10(float64(rt.Rows)+1)

		// NDV mismatch: |log ratio| of the joined columns' NDVs. The
		// textbook 1/max(NDV) estimate assumes key containment; a large
		// mismatch signals the assumption is doing heavy lifting.
		lNDV, rNDV := 1.0, 1.0
		if col, ok := lt.Column(j.Left.Column); ok {
			lNDV = float64(col.Distinct)
		}
		if col, ok := rt.Column(j.Right.Column); ok {
			rNDV = float64(col.Distinct)
		}
		mismatch := math.Abs(math.Log10(lNDV) - math.Log10(rNDV))

		// Propagation: each filter on either input is an AVI-correlation
		// risk whose error the join inherits.
		prop := 0.0
		for _, f := range q.Filters {
			if f.Rel == j.LeftRel || f.Rel == j.RightRel {
				prop++
			}
		}

		scores = append(scores, Score{
			JoinID: j.ID,
			Volume: volume, Mismatch: mismatch, Propagation: prop,
			Total: volume + 2*mismatch + prop,
		})
	}
	sort.Slice(scores, func(i, k int) bool {
		if scores[i].Total != scores[k].Total {
			return scores[i].Total > scores[k].Total
		}
		return scores[i].JoinID < scores[k].JoinID
	})
	return scores
}

// Identify returns the IDs of the top-k most error-prone join predicates,
// in dimension order (descending score). k is clamped to the number of
// joins; k <= 0 selects all joins — the paper's conservative fallback.
func Identify(q *query.Query, k int) []int {
	scores := Rank(q)
	if k <= 0 || k > len(scores) {
		k = len(scores)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = scores[i].JoinID
	}
	return out
}
