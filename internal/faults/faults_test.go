package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilPlanIsNoop(t *testing.T) {
	var p *Plan
	if err := p.BeforeExec(context.Background()); err != nil {
		t.Fatalf("nil BeforeExec: %v", err)
	}
	if err := p.OnCostEval(); err != nil {
		t.Fatalf("nil OnCostEval: %v", err)
	}
	if f := p.OverrunFactor(); f != 1 {
		t.Fatalf("nil OverrunFactor = %g", f)
	}
	if p.Injected() != 0 || p.Execs() != 0 {
		t.Fatal("nil counters nonzero")
	}
}

func TestContextThreading(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("background context carries a plan")
	}
	p := &Plan{FailExecAt: 1}
	ctx := With(context.Background(), p)
	if From(ctx) != p {
		t.Fatal("plan not recovered from context")
	}
	if got := With(context.Background(), nil); From(got) != nil {
		t.Fatal("nil plan attached")
	}
}

func TestFailWindow(t *testing.T) {
	p := &Plan{FailExecAt: 2, FailExecCount: 2}
	ctx := context.Background()
	if err := p.BeforeExec(ctx); err != nil {
		t.Fatalf("exec 1 should pass: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := p.BeforeExec(ctx); !errors.Is(err, ErrInjected) {
			t.Fatalf("exec %d: want ErrInjected, got %v", 2+i, err)
		}
	}
	if err := p.BeforeExec(ctx); err != nil {
		t.Fatalf("exec 4 should pass: %v", err)
	}
	if p.Injected() != 2 || p.Execs() != 4 {
		t.Fatalf("injected=%d execs=%d", p.Injected(), p.Execs())
	}
}

func TestFailCountDefaultsToOne(t *testing.T) {
	p := &Plan{FailExecAt: 1}
	if err := p.BeforeExec(context.Background()); !IsInjected(err) {
		t.Fatalf("exec 1: want injected, got %v", err)
	}
	if err := p.BeforeExec(context.Background()); err != nil {
		t.Fatalf("exec 2 should pass: %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	p := &Plan{PanicExecAt: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = p.BeforeExec(context.Background())
}

func TestCostEvalInjection(t *testing.T) {
	p := &Plan{FailCostEvalAt: 2}
	if err := p.OnCostEval(); err != nil {
		t.Fatalf("eval 1: %v", err)
	}
	if err := p.OnCostEval(); !IsInjected(err) {
		t.Fatalf("eval 2: want injected, got %v", err)
	}
	if err := p.OnCostEval(); err != nil {
		t.Fatalf("eval 3: %v", err)
	}
}

func TestLatencyHonoursDeadline(t *testing.T) {
	p := &Plan{Latency: 5 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.BeforeExec(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("deadline not enforced promptly: %v", took)
	}
}

func TestOverrunFactor(t *testing.T) {
	if f := (&Plan{BudgetOverrun: 2.5}).OverrunFactor(); f != 2.5 {
		t.Fatalf("factor = %g", f)
	}
	if f := (&Plan{BudgetOverrun: 0.5}).OverrunFactor(); f != 1 {
		t.Fatalf("sub-1 factor = %g, want disabled", f)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Scenario(seed), Scenario(seed)
		if *aConf(a) != *aConf(b) {
			t.Fatalf("seed %d: scenarios differ", seed)
		}
		if c := aConf(a); c.FailExecAt == 0 && c.PanicExecAt == 0 && c.FailCostEvalAt == 0 &&
			c.BudgetOverrun == 0 && c.SkewLearnedAt == 0 {
			t.Fatalf("seed %d: scenario injects nothing", seed)
		}
	}
}

// aConf extracts the comparable configuration of a plan (counters and mutex
// excluded).
func aConf(p *Plan) *struct {
	FailExecAt, FailExecCount, PanicExecAt, FailCostEvalAt int
	Latency                                                time.Duration
	BudgetOverrun                                          float64
	SkewLearnedAt                                          int
	SkewLearnedFactor                                      float64
} {
	return &struct {
		FailExecAt, FailExecCount, PanicExecAt, FailCostEvalAt int
		Latency                                                time.Duration
		BudgetOverrun                                          float64
		SkewLearnedAt                                          int
		SkewLearnedFactor                                      float64
	}{p.FailExecAt, p.FailExecCount, p.PanicExecAt, p.FailCostEvalAt, p.Latency, p.BudgetOverrun,
		p.SkewLearnedAt, p.SkewLearnedFactor}
}
