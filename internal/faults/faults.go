// Package faults provides an injectable fault plan for resilience testing —
// the operational analogue of the paper's adversarial selectivity errors.
// Where the MSO guarantees bound the damage of a hostile *estimate*, a fault
// plan bounds-checks the runtime against hostile *operations*: an execution
// that errors, an operator that panics, latency that eats a deadline, or a
// budget overrun. Plans are threaded through context.Context so any layer
// (engine, row executor, server handler) can consult the active plan without
// new parameters, and seeded scenarios make chaos runs deterministic and
// replayable in tests.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected marks a failure introduced by a fault plan. Degradation
// policies treat it exactly like a real execution failure; tests assert on
// it with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// IsInjected reports whether the error originates from a fault plan.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// ErrCrashed marks a process-internal "kill" injected at a checkpoint
// boundary: the run loop aborts as if the process had died there, without
// the retry/degradation ladder absorbing it — recovery is the resume path's
// job, not the retry policy's. Deliberately NOT wrapped around ErrInjected.
var ErrCrashed = errors.New("faults: injected crash")

// IsCrash reports whether the error is an injected checkpoint crash.
func IsCrash(err error) bool { return errors.Is(err, ErrCrashed) }

// Plan describes which faults to inject and when. Counters are 1-based over
// the executions observed by the consulted layer; the zero value injects
// nothing. A Plan is safe for concurrent use.
type Plan struct {
	// FailExecAt injects ErrInjected on the Nth execution (1-based).
	// 0 disables.
	FailExecAt int
	// FailExecCount is how many consecutive executions fail starting at
	// FailExecAt. 0 means 1 when FailExecAt is set. A count larger than any
	// retry budget forces the degradation ladder all the way down.
	FailExecCount int
	// PanicExecAt panics on the Nth execution (1-based) — simulating an
	// operator bug rather than a clean error. 0 disables.
	PanicExecAt int
	// FailCostEvalAt injects ErrInjected on the Nth cost evaluation
	// (1-based). 0 disables.
	FailCostEvalAt int
	// Latency is artificial delay added to every execution, to exercise
	// deadline enforcement. 0 disables.
	Latency time.Duration
	// BudgetOverrun, when > 1, multiplies every execution's charged cost —
	// the engine spends past its assigned budget, as a misbehaving operator
	// would. Values <= 1 disable.
	BudgetOverrun float64
	// SkewLearnedAt corrupts the Nth learned-selectivity observation
	// (1-based over spill-mode learns) by multiplying it with
	// SkewLearnedFactor — simulating run-time monitoring gone wrong (a
	// miscounted join output). A factor large enough to push the value past
	// 1 drives the discovery outside the ESS, exercising the guard's
	// ESS-escape fallback. 0 disables.
	SkewLearnedAt int
	// SkewLearnedFactor is the multiplier applied at SkewLearnedAt
	// (values <= 0 are treated as 1).
	SkewLearnedFactor float64
	// CrashAtCheckpoint aborts the run loop with ErrCrashed at the Nth
	// checkpoint boundary (1-based) — a process-internal "kill" that fires
	// *before* the snapshot is persisted, so the last durable state is the
	// previous checkpoint and the resume path must redo the in-flight
	// contour (the bounded-redo case). 0 disables.
	CrashAtCheckpoint int

	mu             sync.Mutex
	execs          int
	costEvals      int
	checkpoints    int
	learns         int
	injected       int
	dropHeartbeats bool
}

// ctxKey is the private context key for the active plan.
type ctxKey struct{}

// With returns a context carrying the fault plan. A nil plan returns ctx
// unchanged.
func With(ctx context.Context, p *Plan) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, p)
}

// From extracts the active fault plan, or nil when none is attached.
func From(ctx context.Context) *Plan {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(ctxKey{}).(*Plan)
	return p
}

// BeforeExec is called by executors at each execution boundary. It applies
// the plan's latency, honours the context deadline during the sleep, panics
// when the panic counter fires, and returns ErrInjected when the failure
// window covers this execution. Nil-safe.
func (p *Plan) BeforeExec(ctx context.Context) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.execs++
	n := p.execs
	panicAt := p.PanicExecAt
	failAt, failCount := p.FailExecAt, p.FailExecCount
	if failAt > 0 && failCount <= 0 {
		failCount = 1
	}
	inject := failAt > 0 && n >= failAt && n < failAt+failCount
	if inject {
		p.injected++
	}
	latency := p.Latency
	p.mu.Unlock()

	if latency > 0 {
		if err := sleepCtx(ctx, latency); err != nil {
			return err
		}
	}
	if panicAt > 0 && n == panicAt {
		panic(fmt.Sprintf("faults: injected panic on execution %d", n))
	}
	if inject {
		return fmt.Errorf("%w (execution %d)", ErrInjected, n)
	}
	return nil
}

// OnCostEval is called by the engine at each cost-model evaluation used for
// execution charging; it returns ErrInjected when the cost-eval counter
// fires. Nil-safe.
func (p *Plan) OnCostEval() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.costEvals++
	n := p.costEvals
	at := p.FailCostEvalAt
	inject := at > 0 && n == at
	if inject {
		p.injected++
	}
	p.mu.Unlock()
	if inject {
		return fmt.Errorf("%w (cost evaluation %d)", ErrInjected, n)
	}
	return nil
}

// OnCheckpoint is called by the run-state layer at each checkpoint
// boundary, before the snapshot is persisted; it returns ErrCrashed when
// the crash counter fires, simulating the process dying at the boundary.
// Nil-safe.
func (p *Plan) OnCheckpoint() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.checkpoints++
	n := p.checkpoints
	at := p.CrashAtCheckpoint
	inject := at > 0 && n == at
	if inject {
		p.injected++
	}
	p.mu.Unlock()
	if inject {
		return fmt.Errorf("%w (checkpoint %d)", ErrCrashed, n)
	}
	return nil
}

// SetDropHeartbeats toggles heartbeat-drop injection at runtime: while set,
// OnHeartbeat fails every probe, so a fleet node consulting the plan in its
// health handler looks partitioned to its peers while staying fully alive —
// the asymmetric network-partition chaos case. Nil-safe (a nil plan ignores
// the toggle).
func (p *Plan) SetDropHeartbeats(drop bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.dropHeartbeats = drop
	p.mu.Unlock()
}

// OnHeartbeat is called by the fleet health handler on every inbound
// heartbeat probe; it returns ErrInjected while heartbeat dropping is
// toggled on. Nil-safe.
func (p *Plan) OnHeartbeat() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	drop := p.dropHeartbeats
	if drop {
		p.injected++
	}
	p.mu.Unlock()
	if drop {
		return fmt.Errorf("%w (heartbeat dropped)", ErrInjected)
	}
	return nil
}

// Checkpoints reports how many checkpoint boundaries the plan has observed.
func (p *Plan) Checkpoints() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.checkpoints
}

// OnLearned is called by the metering substrates after each spill-mode
// learned-selectivity observation; it returns the (possibly skew-corrupted)
// value the monitoring layer reports. Nil-safe.
func (p *Plan) OnLearned(learned float64) float64 {
	if p == nil {
		return learned
	}
	p.mu.Lock()
	p.learns++
	n := p.learns
	at, factor := p.SkewLearnedAt, p.SkewLearnedFactor
	inject := at > 0 && n == at
	if inject {
		p.injected++
	}
	p.mu.Unlock()
	if !inject {
		return learned
	}
	if factor <= 0 {
		factor = 1
	}
	return learned * factor
}

// OverrunFactor returns the charged-cost multiplier (1 when disabled).
// Nil-safe.
func (p *Plan) OverrunFactor() float64 {
	if p == nil || p.BudgetOverrun <= 1 {
		return 1
	}
	return p.BudgetOverrun
}

// Injected reports how many faults the plan has injected so far.
func (p *Plan) Injected() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// Execs reports how many executions the plan has observed.
func (p *Plan) Execs() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.execs
}

// sleepCtx sleeps for d or until the context is done, whichever first. A
// nil context (callers without cancellation) degrades to the background
// context rather than a bare time.Sleep, so every latency injection stays
// on the cancellable timer path.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		ctx = context.Background()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Scenario returns a deterministic seeded fault plan for chaos suites: the
// seed picks a fault class (clean error, transient error burst, panic,
// cost-eval error, budget overrun, or monitoring skew) and its trigger
// point. Identical seeds yield identical plans, so failures found by
// `make chaos` replay exactly.
func Scenario(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{}
	switch rng.Intn(6) {
	case 0: // single clean failure early in discovery
		p.FailExecAt = 1 + rng.Intn(3)
	case 1: // transient burst: fails, then recovers under retry
		p.FailExecAt = 1 + rng.Intn(3)
		p.FailExecCount = 1 + rng.Intn(2)
	case 2: // operator panic
		p.PanicExecAt = 1 + rng.Intn(4)
	case 3: // cost-model evaluation failure
		p.FailCostEvalAt = 1 + rng.Intn(4)
	case 4: // budget overrun: the watchdog must abort and keep discovering
		p.BudgetOverrun = 1.5 + rng.Float64()*2
	case 5: // monitoring skew past the ESS boundary: guard escape fallback
		p.SkewLearnedAt = 1 + rng.Intn(3)
		// Large enough to push any positive observation past 1.
		p.SkewLearnedFactor = 1e9
	}
	return p
}
