package rowexec

import (
	"repro/internal/engine"
	"repro/internal/plan"
)

// Adapter exposes the row engine through the engine.Executor interface, so
// PlanBouquet, SpillBound and AlignedBound can drive real tuple-at-a-time
// executions instead of the cost-model simulation: budgets are enforced by
// the work meter, and spill-mode learning comes from counting actual join
// output rows. This is the closest analogue of the paper's modified
// PostgreSQL engine.
type Adapter struct {
	// E is the underlying row engine.
	E *Engine
}

var _ engine.Executor = (*Adapter)(nil)

// Execute runs the plan on real rows under the cost budget.
func (a *Adapter) Execute(p *plan.Plan, budget float64) engine.Result {
	res, err := a.E.Run(p, budget)
	if err != nil {
		// Non-budget errors surface as incomplete executions charged their
		// budget; the discovery loops treat them like expiries.
		return engine.Result{Completed: false, Spent: budget}
	}
	return engine.Result{Completed: res.Completed, Spent: res.Spent}
}

// ExecuteSpill runs the epp subtree on real rows, deriving the learnt
// selectivity from the observed output count: exact on completion, the
// partial observation otherwise (a conservative lower bound — output so
// far over the input cross product).
func (a *Adapter) ExecuteSpill(p *plan.Plan, dim int, budget float64) (engine.SpillResult, bool) {
	joinID := a.E.Query.EPPs[dim]
	if p.FindJoinNode(joinID) == nil {
		return engine.SpillResult{}, false
	}
	res, st, err := a.E.SpillRun(p, dim, budget)
	if err != nil {
		return engine.SpillResult{}, false
	}
	out := engine.SpillResult{
		Completed: res.Completed,
		Spent:     res.Spent,
	}
	if res.Completed {
		out.Learned = ObservedSelectivity(st)
	} else {
		// Partial monitoring: the counts accumulated before the budget
		// expired. Inputs may be partially consumed, so treat the
		// observation as a lower bound with full input cardinalities.
		node := subRootStats(res, p, joinID)
		if node != nil {
			full := &NodeStats{
				OutRows:   node.OutRows,
				LeftRows:  maxInt64(node.LeftRows, 1),
				RightRows: maxInt64(node.RightRows, 1),
			}
			out.Learned = ObservedSelectivity(full)
		}
	}
	return out, true
}

func subRootStats(res Result, p *plan.Plan, joinID int) *NodeStats {
	n := p.FindJoinNode(joinID)
	if n == nil {
		return nil
	}
	return res.Stats[n]
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
