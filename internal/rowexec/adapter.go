package rowexec

import (
	"context"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// Adapter exposes the row engine through the engine.Executor interface, so
// PlanBouquet, SpillBound and AlignedBound can drive real tuple-at-a-time
// executions instead of the cost-model simulation: budgets are enforced by
// the work meter, and spill-mode learning comes from counting actual join
// output rows. This is the closest analogue of the paper's modified
// PostgreSQL engine.
type Adapter struct {
	// E is the underlying row engine.
	E *Engine
}

var _ engine.ContextExecutor = (*Adapter)(nil)

// Execute runs the plan on real rows under the cost budget.
func (a *Adapter) Execute(p *plan.Plan, budget float64) engine.Result {
	res, _ := a.ExecuteCtx(context.Background(), p, budget)
	return res
}

// ExecuteCtx runs the plan on real rows with cancellation (the row loop
// polls the context) and fault injection from any plan on the context.
func (a *Adapter) ExecuteCtx(ctx context.Context, p *plan.Plan, budget float64) (engine.Result, error) {
	if err := faults.From(ctx).BeforeExec(ctx); err != nil {
		return engine.Result{}, err
	}
	res, err := a.E.RunContext(ctx, p, budget)
	if err != nil {
		if ctx.Err() != nil {
			return engine.Result{}, err
		}
		if engine.IsBudgetAbort(err) {
			// Watchdog ceiling hit mid-execution: the clamped charge stands
			// in the ledger and the terminal abort propagates.
			a.recordSpend(ctx, -1, budget, res.Spent, false, 0)
			return engine.Result{Completed: false, Spent: res.Spent}, err
		}
		// Non-budget, non-cancellation errors surface as incomplete
		// executions charged their budget; the discovery loops treat them
		// like expiries.
		a.recordSpend(ctx, -1, budget, budget, false, 0)
		return engine.Result{Completed: false, Spent: budget}, nil
	}
	a.recordSpend(ctx, -1, budget, res.Spent, res.Completed, 0)
	return engine.Result{Completed: res.Completed, Spent: res.Spent}, nil
}

// recordSpend emits the row engine's BudgetSpend accounting event to any
// recorder on the context, mirroring the cost-model simulator's.
func (a *Adapter) recordSpend(ctx context.Context, dim int, budget, spent float64, completed bool, learned float64) {
	telemetry.From(ctx).Record(telemetry.Event{
		Kind: telemetry.BudgetSpend, Mode: "rowexec", Dim: dim,
		Budget: budget, Spent: spent, Completed: completed, Learned: learned,
	})
}

// ExecuteSpill runs the epp subtree on real rows, deriving the learnt
// selectivity from the observed output count: exact on completion, the
// partial observation otherwise (a conservative lower bound — output so
// far over the input cross product).
func (a *Adapter) ExecuteSpill(p *plan.Plan, dim int, budget float64) (engine.SpillResult, bool) {
	res, ok, _ := a.ExecuteSpillCtx(context.Background(), p, dim, budget)
	return res, ok
}

// ExecuteSpillCtx is ExecuteSpill with cancellation and fault injection.
func (a *Adapter) ExecuteSpillCtx(ctx context.Context, p *plan.Plan, dim int, budget float64) (engine.SpillResult, bool, error) {
	if err := faults.From(ctx).BeforeExec(ctx); err != nil {
		return engine.SpillResult{}, false, err
	}
	joinID := a.E.Query.EPPs[dim]
	if p.FindJoinNode(joinID) == nil {
		return engine.SpillResult{}, false, nil
	}
	res, st, err := a.E.SpillRunContext(ctx, p, dim, budget)
	if err != nil {
		if ctx.Err() != nil {
			return engine.SpillResult{}, false, err
		}
		if engine.IsBudgetAbort(err) {
			// Watchdog abort mid-spill: keep the partial monitoring bound —
			// it is still a valid lower bound — and propagate the terminal
			// error with the clamped charge.
			out := engine.SpillResult{Completed: false, Spent: res.Spent,
				Learned: partialLearned(res, p, joinID)}
			out.Learned = faults.From(ctx).OnLearned(out.Learned)
			a.recordSpend(ctx, dim, budget, out.Spent, false, out.Learned)
			return out, true, err
		}
		return engine.SpillResult{}, false, nil
	}
	out := engine.SpillResult{
		Completed: res.Completed,
		Spent:     res.Spent,
	}
	if res.Completed {
		out.Learned = ObservedSelectivity(st)
	} else {
		out.Learned = partialLearned(res, p, joinID)
	}
	// Run-time monitoring is the layer an injected skew corrupts, so the
	// fault applies to the observed value regardless of completion.
	out.Learned = faults.From(ctx).OnLearned(out.Learned)
	a.recordSpend(ctx, dim, budget, out.Spent, out.Completed, out.Learned)
	return out, true, nil
}

// partialLearned derives the monitoring lower bound from the counts
// accumulated before the budget expired. Inputs may be partially consumed,
// so the observation is taken against full input cardinalities.
func partialLearned(res Result, p *plan.Plan, joinID int) float64 {
	node := subRootStats(res, p, joinID)
	if node == nil {
		return 0
	}
	full := &NodeStats{
		OutRows:   node.OutRows,
		LeftRows:  maxInt64(node.LeftRows, 1),
		RightRows: maxInt64(node.RightRows, 1),
	}
	return ObservedSelectivity(full)
}

func subRootStats(res Result, p *plan.Plan, joinID int) *NodeStats {
	n := p.FindJoinNode(joinID)
	if n == nil {
		return nil
	}
	return res.Stats[n]
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
