package rowexec

import (
	"testing"

	"repro/internal/aligned"
	"repro/internal/bouquet"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/spillbound"
)

// TestSpillBoundOnRealRows is the end-to-end physical run: the full
// SpillBound discovery loop drives the row engine (via the Executor
// adapter) instead of the cost-model simulator. Contours and plan choices
// still come from the optimizer's model; budgets are enforced — and
// selectivities learnt — by actual tuple execution. The realized
// sub-optimality is measured against the best physical execution and must
// stay within the structural bound inflated by the model↔engine
// discrepancy (a bounded cost-model error in the Sec 7 sense).
func TestSpillBoundOnRealRows(t *testing.T) {
	e, m := smallEngine(t)
	o := optimizer.MustNew(m)
	s := ess.Build(o, ess.NewGrid(2, 10, 1e-4))
	r := spillbound.NewRunner(s)

	out := r.Run(&Adapter{E: e})
	if !out.Completed {
		t.Fatalf("physical SpillBound did not complete\n%s", out.Trace())
	}
	if out.TotalCost <= 0 {
		t.Fatal("no cost accounted")
	}

	// Physical oracle: cheapest measured execution among the POSP plans.
	best := -1.0
	for _, p := range s.Plans() {
		res, err := e.Run(p, 0)
		if err != nil || !res.Completed {
			continue
		}
		if best < 0 || res.Spent < best {
			best = res.Spent
		}
	}
	if best <= 0 {
		t.Fatal("no physical baseline")
	}
	subOpt := out.TotalCost / best
	// Generous inflation factor for model↔engine discrepancy.
	if bound := spillbound.Guarantee(2) * 4; subOpt > bound {
		t.Errorf("physical sub-optimality %.2f exceeds inflated bound %.2f\n%s",
			subOpt, bound, out.Trace())
	}
	t.Logf("physical SpillBound: %d executions, sub-optimality %.2f vs best physical plan",
		len(out.Executions), subOpt)

	// Learned selectivities from real rows must match the data's ground
	// truth (1/NDV) when fully learnt.
	for dim, sel := range out.LearnedSel {
		want := []float64{1.0 / 400, 1.0 / 1000}[dim]
		if sel < want/2 || sel > want*2 {
			t.Errorf("dim %d: learnt %g from rows, ground truth ≈%g", dim, sel, want)
		}
	}
}

// TestPlanBouquetOnRealRows drives the PB protocol physically.
func TestPlanBouquetOnRealRows(t *testing.T) {
	e, m := smallEngine(t)
	o := optimizer.MustNew(m)
	s := ess.Build(o, ess.NewGrid(2, 10, 1e-4))
	d := bouquet.Reduce(s, 0.2)
	out := bouquet.Run(d, &Adapter{E: e}, 2)
	if !out.Completed {
		t.Fatal("physical PlanBouquet did not complete")
	}
	if out.TotalCost <= 0 {
		t.Fatal("no cost accounted")
	}
}

// TestAlignedBoundOnRealRows drives AB physically.
func TestAlignedBoundOnRealRows(t *testing.T) {
	e, m := smallEngine(t)
	o := optimizer.MustNew(m)
	s := ess.Build(o, ess.NewGrid(2, 10, 1e-4))
	r := aligned.NewRunner(s)
	out := r.Run(&Adapter{E: e})
	if !out.Completed {
		t.Fatalf("physical AlignedBound did not complete\n%s", out.Trace())
	}
}

func TestAdapterSpillOnAbsentPredicate(t *testing.T) {
	e, _ := smallEngine(t)
	a := &Adapter{E: e}
	// A bare scan applies no join predicate.
	sub := plan.New(&plan.Node{Kind: plan.SeqScan, Rel: 0})
	if _, ok := a.ExecuteSpill(sub, 0, 100); ok {
		t.Error("spill on absent predicate should report !ok")
	}
}
