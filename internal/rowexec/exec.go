package rowexec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/query"
)

// ErrBudget is returned when an execution exhausts its cost budget; the
// paper's protocol forcibly terminates the plan and discards partial
// results.
var ErrBudget = errors.New("rowexec: cost budget exhausted")

// Engine executes physical plans over synthetic rows for one query.
type Engine struct {
	// Query is the bound query.
	Query *query.Query
	// Params supplies the work-meter constants (the same profile the cost
	// model uses, so measured spend is comparable to modeled cost).
	Params cost.Params
	// RowCap bounds every base relation's generated cardinality
	// (0 = catalog cardinality).
	RowCap int64
}

// field identifies one column of a tuple: the producing relation and the
// column name.
type field struct {
	rel int
	col string
}

type schema []field

func (s schema) find(rel int, col string) int {
	for i, f := range s {
		if f.rel == rel && f.col == col {
			return i
		}
	}
	return -1
}

// meter accumulates work in cost-model units and enforces the budget, and —
// when a context is attached — polls for cancellation at operator-row
// granularity so a deadline aborts a long scan or join mid-stream. An
// injected budget overrun moves the forced-termination point (stop) past the
// assigned budget; the watchdog's cost ceiling, when armed, aborts the run
// terminally before the overrun can spend further.
type meter struct {
	spent   float64
	stop    float64 // forced-termination point: budget · overrun factor
	ceiling float64 // watchdog hard-abort point (engine.CostCeiling)
	guarded bool
	ctx     context.Context
	ops     int
}

// ctxPollMask controls how often the meter polls the context: every
// (mask+1) charges. Charges are per-tuple, so 1024 keeps the poll off the
// hot path while bounding cancellation latency to ~a thousand rows.
const ctxPollMask = 1023

func (m *meter) charge(units float64) error {
	m.spent += units
	if m.guarded && m.spent > m.ceiling {
		return fmt.Errorf("rowexec: metered work %.4g exceeds guard ceiling %.4g: %w",
			m.spent, m.ceiling, engine.ErrBudgetAborted)
	}
	if m.spent > m.stop {
		return ErrBudget
	}
	if m.ctx != nil {
		m.ops++
		if m.ops&ctxPollMask == 0 {
			if err := m.ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// NodeStats records one operator's observed behaviour.
type NodeStats struct {
	// OutRows is the number of tuples the operator emitted.
	OutRows int64
	// LeftRows and RightRows are the consumed input cardinalities
	// (RightRows is the probed base cardinality for index nested-loops).
	LeftRows, RightRows int64
}

// Result summarizes a (possibly truncated) execution.
type Result struct {
	// Completed reports whether the plan ran to completion within budget.
	Completed bool
	// Spent is the metered work in cost units.
	Spent float64
	// OutRows is the number of result tuples produced before termination.
	OutRows int64
	// Stats holds per-operator observations.
	Stats map[*plan.Node]*NodeStats
}

// Run executes the plan to completion or budget exhaustion. A non-positive
// budget means unlimited.
func (e *Engine) Run(p *plan.Plan, budget float64) (Result, error) {
	return e.RunContext(context.Background(), p, budget)
}

// RunContext is Run with cancellation: the work meter polls the context at
// row granularity, so a deadline or cancel aborts the execution mid-operator
// with the context's error.
func (e *Engine) RunContext(ctx context.Context, p *plan.Plan, budget float64) (Result, error) {
	return e.runNode(ctx, p.Root, budget)
}

// SpillRun executes only the subtree rooted at the node applying the ESS
// dimension's predicate, discarding its output — spill-mode execution
// (Sec 3.1.2). The returned result's OutRows is the spilled operator's
// observed output count; combined with the input cardinalities it yields
// the monitored selectivity.
func (e *Engine) SpillRun(p *plan.Plan, dim int, budget float64) (Result, *NodeStats, error) {
	return e.SpillRunContext(context.Background(), p, dim, budget)
}

// SpillRunContext is SpillRun with cancellation (see RunContext).
func (e *Engine) SpillRunContext(ctx context.Context, p *plan.Plan, dim int, budget float64) (Result, *NodeStats, error) {
	joinID := e.Query.EPPs[dim]
	sub := p.Subtree(joinID)
	if sub == nil {
		return Result{}, nil, fmt.Errorf("rowexec: plan does not apply epp dimension %d", dim)
	}
	res, err := e.runNode(ctx, sub.Root, budget)
	if err != nil {
		return res, nil, err
	}
	return res, res.Stats[sub.Root], nil
}

// ObservedSelectivity converts a join node's observed counts into the
// predicate selectivity estimate out/(l·r) — what run-time monitoring
// reports.
func ObservedSelectivity(st *NodeStats) float64 {
	if st == nil || st.LeftRows == 0 || st.RightRows == 0 {
		return 0
	}
	return float64(st.OutRows) / (float64(st.LeftRows) * float64(st.RightRows))
}

func (e *Engine) runNode(ctx context.Context, root *plan.Node, budget float64) (Result, error) {
	if budget <= 0 {
		budget = math.Inf(1)
	}
	m := &meter{stop: budget * faults.From(ctx).OverrunFactor(), ctx: ctx}
	if ceil, ok := engine.CostCeiling(ctx); ok {
		m.ceiling, m.guarded = ceil, true
	}
	stats := map[*plan.Node]*NodeStats{}
	_, rows, err := e.exec(root, m, stats)
	res := Result{
		Completed: err == nil,
		// An injected overrun spends past the assigned budget before the
		// forced termination lands; the ledger records the real charge so the
		// watchdog can detect it.
		Spent: math.Min(m.spent, m.stop),
		Stats: stats,
	}
	if m.guarded {
		res.Spent = math.Min(res.Spent, m.ceiling)
	}
	if err == nil {
		res.OutRows = int64(len(rows))
	} else if st, ok := stats[root]; ok {
		res.OutRows = st.OutRows
	}
	if err != nil && !errors.Is(err, ErrBudget) {
		return res, err
	}
	return res, nil
}

// exec evaluates the subtree, returning its schema and materialized output.
// Materialization keeps the implementation simple while preserving the
// metered work and budget semantics (the meter charges as rows are
// produced, so truncation points are faithful).
func (e *Engine) exec(n *plan.Node, m *meter, stats map[*plan.Node]*NodeStats) (schema, [][]Value, error) {
	st := &NodeStats{}
	stats[n] = st
	p := &e.Params
	switch n.Kind {
	case plan.SeqScan:
		return e.scan(n, m, st)

	case plan.Sort:
		sch, rows, err := e.exec(n.Left, m, stats)
		if err != nil {
			return nil, nil, err
		}
		nrows := math.Max(float64(len(rows)), 2)
		if err := m.charge(float64(len(rows)) * math.Log2(nrows) * p.SortCmpCost); err != nil {
			return nil, nil, err
		}
		st.OutRows = int64(len(rows))
		st.LeftRows = st.OutRows
		return sch, rows, nil

	case plan.Aggregate:
		sch, rows, err := e.exec(n.Left, m, stats)
		if err != nil {
			return nil, nil, err
		}
		st.LeftRows = int64(len(rows))
		// Group by the query's GROUP BY columns; emit one representative
		// tuple per group (aggregate functions are not modeled — the
		// robustness machinery only needs cardinalities and work).
		keyIdx := make([]int, 0, len(e.Query.GroupBy))
		for _, gb := range e.Query.GroupBy {
			rel, okRel := e.Query.RelationIndex(gb.Alias)
			if !okRel {
				return nil, nil, fmt.Errorf("rowexec: unknown group-by alias %q", gb.Alias)
			}
			i := sch.find(rel, gb.Column)
			if i < 0 {
				return nil, nil, fmt.Errorf("rowexec: group-by column %v missing from schema", gb)
			}
			keyIdx = append(keyIdx, i)
		}
		groups := map[string]int{}
		var out [][]Value
		var keyBuf []byte
		for _, row := range rows {
			if err := m.charge(p.CPUOperCost + p.HashQualCost); err != nil {
				return nil, nil, err
			}
			keyBuf = keyBuf[:0]
			for _, i := range keyIdx {
				v := row[i]
				for s := 0; s < 64; s += 8 {
					keyBuf = append(keyBuf, byte(v>>uint(s)))
				}
			}
			if _, seen := groups[string(keyBuf)]; !seen {
				groups[string(keyBuf)] = len(out)
				if err := m.charge(p.CPUTupleCost); err != nil {
					return nil, nil, err
				}
				out = append(out, row)
				st.OutRows++
			}
		}
		return sch, out, nil

	case plan.HashJoin:
		lsch, lrows, err := e.exec(n.Left, m, stats)
		if err != nil {
			return nil, nil, err
		}
		rsch, rrows, err := e.exec(n.Right, m, stats)
		if err != nil {
			return nil, nil, err
		}
		st.LeftRows, st.RightRows = int64(len(lrows)), int64(len(rrows))
		key := e.Query.Joins[n.JoinIDs[0]]
		li, ri, err := joinCols(lsch, rsch, key)
		if err != nil {
			return nil, nil, err
		}
		ht := make(map[Value][]int, len(rrows))
		for idx, r := range rrows {
			if err := m.charge(p.CPUOperCost + p.HashQualCost); err != nil {
				return nil, nil, err
			}
			ht[r[ri]] = append(ht[r[ri]], idx)
		}
		out := make([][]Value, 0, len(lrows))
		osch := append(append(schema{}, lsch...), rsch...)
		for _, l := range lrows {
			if err := m.charge(p.HashQualCost); err != nil {
				return nil, nil, err
			}
			for _, idx := range ht[l[li]] {
				joined := concat(l, rrows[idx])
				if !e.extraPredsMatch(n, osch, joined) {
					continue
				}
				if err := m.charge(p.CPUTupleCost); err != nil {
					return nil, nil, err
				}
				out = append(out, joined)
				st.OutRows++
			}
		}
		return osch, out, nil

	case plan.MergeJoin:
		lsch, lrows, err := e.exec(n.Left, m, stats)
		if err != nil {
			return nil, nil, err
		}
		rsch, rrows, err := e.exec(n.Right, m, stats)
		if err != nil {
			return nil, nil, err
		}
		st.LeftRows, st.RightRows = int64(len(lrows)), int64(len(rrows))
		key := e.Query.Joins[n.JoinIDs[0]]
		li, ri, err := joinCols(lsch, rsch, key)
		if err != nil {
			return nil, nil, err
		}
		sortRows(lrows, li)
		sortRows(rrows, ri)
		if err := m.charge(float64(len(lrows)+len(rrows)) * p.CPUOperCost); err != nil {
			return nil, nil, err
		}
		osch := append(append(schema{}, lsch...), rsch...)
		var out [][]Value
		i, j := 0, 0
		for i < len(lrows) && j < len(rrows) {
			lv, rv := lrows[i][li], rrows[j][ri]
			switch {
			case lv < rv:
				i++
			case lv > rv:
				j++
			default:
				jEnd := j
				for jEnd < len(rrows) && rrows[jEnd][ri] == rv {
					jEnd++
				}
				for ; i < len(lrows) && lrows[i][li] == lv; i++ {
					for k := j; k < jEnd; k++ {
						joined := concat(lrows[i], rrows[k])
						if !e.extraPredsMatch(n, osch, joined) {
							continue
						}
						if err := m.charge(p.CPUTupleCost); err != nil {
							return nil, nil, err
						}
						out = append(out, joined)
						st.OutRows++
					}
				}
				j = jEnd
			}
		}
		return osch, out, nil

	case plan.NestLoop:
		lsch, lrows, err := e.exec(n.Left, m, stats)
		if err != nil {
			return nil, nil, err
		}
		rsch, rrows, err := e.exec(n.Right, m, stats)
		if err != nil {
			return nil, nil, err
		}
		st.LeftRows, st.RightRows = int64(len(lrows)), int64(len(rrows))
		if err := m.charge(float64(len(rrows)) * p.MaterializeCost); err != nil {
			return nil, nil, err
		}
		osch := append(append(schema{}, lsch...), rsch...)
		var out [][]Value
		for _, l := range lrows {
			for _, r := range rrows {
				if err := m.charge(p.NLPairCost); err != nil {
					return nil, nil, err
				}
				joined := concat(l, r)
				if !e.predsMatch(n.JoinIDs, osch, joined) {
					continue
				}
				if err := m.charge(p.CPUTupleCost); err != nil {
					return nil, nil, err
				}
				out = append(out, joined)
				st.OutRows++
			}
		}
		return osch, out, nil

	case plan.IndexNestLoop:
		lsch, lrows, err := e.exec(n.Left, m, stats)
		if err != nil {
			return nil, nil, err
		}
		st.LeftRows = int64(len(lrows))
		innerRel := n.Right.Rel
		innerRows := e.relRows(innerRel)
		st.RightRows = innerRows
		key := e.Query.Joins[n.JoinIDs[0]]
		// Identify which side of the key belongs to the inner relation.
		innerCol, outerRef := key.Right, key.Left
		if key.LeftRel == innerRel {
			innerCol, outerRef = key.Left, key.Right
		}
		icol, _ := e.Query.Relations[innerRel].Table.Column(innerCol.Column)
		// Build the index (not charged: indexes pre-exist).
		index := map[Value][]int64{}
		for row := int64(0); row < innerRows; row++ {
			index[ColumnValue(icol, row)] = append(index[ColumnValue(icol, row)], row)
		}
		oRel, _ := e.Query.RelationIndex(outerRef.Alias)
		oi := lsch.find(oRel, outerRef.Column)
		if oi < 0 {
			return nil, nil, fmt.Errorf("rowexec: outer column %v missing from schema", outerRef)
		}
		rsch := e.relSchema(innerRel)
		osch := append(append(schema{}, lsch...), rsch...)
		var out [][]Value
		for _, l := range lrows {
			if err := m.charge(p.IndexProbeCost); err != nil {
				return nil, nil, err
			}
			for _, row := range index[l[oi]] {
				if err := m.charge(p.RandPageCost + p.CPUTupleCost); err != nil {
					return nil, nil, err
				}
				joined := concat(l, e.relTuple(innerRel, row))
				if !e.extraPredsMatch(n, osch, joined) {
					continue
				}
				out = append(out, joined)
				st.OutRows++
			}
		}
		return osch, out, nil
	}
	return nil, nil, fmt.Errorf("rowexec: unsupported operator %v", n.Kind)
}

// scan generates a base relation's rows, applying its filters.
func (e *Engine) scan(n *plan.Node, m *meter, st *NodeStats) (schema, [][]Value, error) {
	p := &e.Params
	rel := n.Rel
	tab := e.Query.Relations[rel].Table
	total := e.relRows(rel)
	rowsPerPage := float64(p.PageBytes / tab.RowBytes)
	if rowsPerPage < 1 {
		rowsPerPage = 1
	}
	pageShare := p.SeqPageCost / rowsPerPage
	sch := e.relSchema(rel)
	filters := e.Query.FiltersOn(rel)
	var out [][]Value
	for row := int64(0); row < total; row++ {
		if err := m.charge(p.CPUOperCost + pageShare); err != nil {
			return nil, nil, err
		}
		tuple := e.relTuple(rel, row)
		if !passFilters(tab, sch, rel, tuple, filters) {
			continue
		}
		if err := m.charge(p.CPUTupleCost); err != nil {
			return nil, nil, err
		}
		out = append(out, tuple)
		st.OutRows++
	}
	st.LeftRows = total
	return sch, out, nil
}

func (e *Engine) relRows(rel int) int64 {
	t := Table{Meta: e.Query.Relations[rel].Table, RowCap: e.RowCap}
	return t.Rows()
}

func (e *Engine) relSchema(rel int) schema {
	tab := e.Query.Relations[rel].Table
	sch := make(schema, len(tab.Columns))
	for i, c := range tab.Columns {
		sch[i] = field{rel: rel, col: c.Name}
	}
	return sch
}

func (e *Engine) relTuple(rel int, row int64) []Value {
	tab := e.Query.Relations[rel].Table
	t := make([]Value, len(tab.Columns))
	for i, c := range tab.Columns {
		t[i] = ColumnValue(c, row)
	}
	return t
}

func concat(a, b []Value) []Value {
	out := make([]Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// joinCols locates the key columns of a join in the left/right schemas. A
// malformed plan (key columns absent from both orientations) returns an
// error rather than panicking, so the executor degrades cleanly.
func joinCols(lsch, rsch schema, j query.Join) (li, ri int, err error) {
	li = lsch.find(j.LeftRel, j.Left.Column)
	ri = rsch.find(j.RightRel, j.Right.Column)
	if li < 0 || ri < 0 {
		// The canonical direction may be flipped relative to the plan's
		// child order.
		li = lsch.find(j.RightRel, j.Right.Column)
		ri = rsch.find(j.LeftRel, j.Left.Column)
	}
	if li < 0 || ri < 0 {
		return -1, -1, fmt.Errorf("rowexec: join %v columns missing from schemas", j)
	}
	return li, ri, nil
}

// predsMatch evaluates all the listed join predicates over a joined tuple.
func (e *Engine) predsMatch(ids []int, sch schema, tuple []Value) bool {
	for _, id := range ids {
		j := e.Query.Joins[id]
		a := sch.find(j.LeftRel, j.Left.Column)
		b := sch.find(j.RightRel, j.Right.Column)
		if a < 0 || b < 0 || tuple[a] != tuple[b] {
			return false
		}
	}
	return true
}

// extraPredsMatch evaluates the node's secondary predicates (the first is
// the physical join condition already applied).
func (e *Engine) extraPredsMatch(n *plan.Node, sch schema, tuple []Value) bool {
	if len(n.JoinIDs) <= 1 {
		return true
	}
	return e.predsMatch(n.JoinIDs[1:], sch, tuple)
}

func sortRows(rows [][]Value, key int) {
	sort.Slice(rows, func(i, j int) bool { return rows[i][key] < rows[j][key] })
}

// passFilters applies the relation's filter predicates to a tuple.
func passFilters(tab *catalog.Table, sch schema, rel int, tuple []Value, filters []query.Filter) bool {
	for _, f := range filters {
		i := sch.find(rel, f.Col.Column)
		if i < 0 {
			return false
		}
		col, ok := tab.Column(f.Col.Column)
		if !ok {
			return false
		}
		v := NormalizedValue(col, tuple[i])
		if !filterHolds(f, v) {
			return false
		}
	}
	return true
}

func filterHolds(f query.Filter, v float64) bool {
	switch f.Op {
	case query.OpEq:
		return v == f.Args[0]
	case query.OpNe:
		return v != f.Args[0]
	case query.OpLt:
		return v < f.Args[0]
	case query.OpLe:
		return v <= f.Args[0]
	case query.OpGt:
		return v > f.Args[0]
	case query.OpGe:
		return v >= f.Args[0]
	case query.OpBetween:
		return v >= f.Args[0] && v <= f.Args[1]
	case query.OpIn:
		for _, a := range f.Args {
			if v == a {
				return true
			}
		}
		return false
	}
	return false
}
