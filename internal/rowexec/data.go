// Package rowexec is a row-at-a-time (Volcano) execution engine over
// deterministic synthetic data. The rest of the library simulates execution
// through the cost model — which is the level at which the paper's theory
// lives — while this package grounds the model: it generates table rows
// whose column values follow the catalog's statistics, executes physical
// plans tuple by tuple with a work meter calibrated to the cost model's
// constants, enforces cost budgets with forced termination mid-stream, and
// implements spill-mode execution with run-time selectivity monitoring by
// actually counting join output rows (paper Secs 3.1.1–3.1.2). Tests use
// it to validate the cardinality propagation and monitoring semantics the
// simulated engine relies on.
package rowexec

import (
	"math"

	"repro/internal/catalog"
)

// Value is a synthetic column value. Join keys and filter comparisons
// operate on int64 domains derived from the catalog statistics.
type Value = int64

// splitmix64 is a fast deterministic mixer for (row, column) coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ColumnValue returns the deterministic synthetic value of the column at
// the given row. With Skew = 0 values are pseudo-uniform over 1..NDV, so
// two join columns match with probability 1/max(NDV_l, NDV_r) — exactly
// the statistics-derived selectivity the cost model assumes, which is what
// lets tests reconcile measured and modeled cardinalities. With Skew > 0
// the uniform variate is pushed through u^(1+Skew), concentrating mass on
// the low values (heavy hitters) while NDV stays the same — data on which
// NDV-based estimators systematically err.
func ColumnValue(col catalog.Column, row int64) Value {
	h := splitmix64(uint64(row)*0x9e3779b97f4a7c15 ^ colSeed(col.Name))
	if col.Skew <= 0 {
		return 1 + int64(h%uint64(col.Distinct))
	}
	u := (float64(h>>11) + 0.5) / (1 << 53)
	v := 1 + int64(math.Pow(u, 1+col.Skew)*float64(col.Distinct))
	if v > col.Distinct {
		v = col.Distinct
	}
	return v
}

// colSeed hashes a column name into a stable seed.
func colSeed(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// NormalizedValue maps a synthetic value into the column's [Min, Max]
// range, for comparing against filter literals stated in domain units.
func NormalizedValue(col catalog.Column, v Value) float64 {
	if col.Distinct <= 1 {
		return col.Min
	}
	frac := float64(v-1) / float64(col.Distinct-1)
	return col.Min + frac*(col.Max-col.Min)
}

// Table binds a catalog table to a row budget: executing at full benchmark
// cardinalities is pointless for validation, so callers cap the scanned
// rows (RowCap <= 0 means all).
type Table struct {
	// Meta is the catalog table.
	Meta *catalog.Table
	// RowCap bounds the generated row count.
	RowCap int64
}

// Rows returns the effective cardinality.
func (t Table) Rows() int64 {
	if t.RowCap > 0 && t.RowCap < t.Meta.Rows {
		return t.RowCap
	}
	return t.Meta.Rows
}
