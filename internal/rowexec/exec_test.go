package rowexec

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sqlmini"
)

// smallCatalog is sized so row-at-a-time execution is instant.
func smallCatalog() *catalog.Catalog {
	c := catalog.New("small")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 400, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 400, Min: 1, Max: 400},
			{Name: "p_price", Distinct: 100, Min: 0, Max: 1000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 4000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 400, Min: 1, Max: 400},
			{Name: "l_orderkey", Distinct: 1000, Min: 1, Max: 1000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 1000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 1000, Min: 1, Max: 1000},
		},
	})
	return c
}

func smallEngine(t *testing.T) (*Engine, *cost.Model) {
	t.Helper()
	q := sqlmini.MustParse(smallCatalog(), `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey
		AND p.p_price < 600`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return &Engine{Query: q, Params: cost.PostgresLike()}, m
}

func leftDeepHJ() *plan.Plan {
	return plan.New(&plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{1},
		Left: &plan.Node{Kind: plan.HashJoin, Rel: -1, JoinIDs: []int{0},
			Left:  &plan.Node{Kind: plan.SeqScan, Rel: 0},
			Right: &plan.Node{Kind: plan.SeqScan, Rel: 1}},
		Right: &plan.Node{Kind: plan.SeqScan, Rel: 2}})
}

// TestCardinalitiesMatchModel is the grounding test: executing a plan over
// the synthetic rows must produce per-operator cardinalities close to the
// cost model's predictions at the data's true selectivities (1/NDV for the
// nested join domains, the filter fraction for the range predicate).
func TestCardinalitiesMatchModel(t *testing.T) {
	e, m := smallEngine(t)
	p := leftDeepHJ()
	truth := cost.Location{1.0 / 400, 1.0 / 1000} // the data's emergent selectivities
	res, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("unbudgeted run did not complete")
	}
	tree := m.EvalTree(p, truth)
	check := func(n *plan.Node, name string) {
		want := tree[n].Rows
		got := float64(res.Stats[n].OutRows)
		if math.Abs(got-want) > 0.25*want+3 {
			t.Errorf("%s: measured %g rows, model predicts %g", name, got, want)
		}
	}
	check(p.Root.Left.Left, "scan(part σ price<600)")
	check(p.Root.Left.Right, "scan(lineitem)")
	check(p.Root.Left, "part⋈lineitem")
	check(p.Root, "⋈orders")
}

// TestSpendTracksModelCost verifies the work meter: unbudgeted execution
// spend should be within a modest factor of the model's cost prediction.
func TestSpendTracksModelCost(t *testing.T) {
	e, m := smallEngine(t)
	p := leftDeepHJ()
	truth := cost.Location{1.0 / 400, 1.0 / 1000}
	res, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	modeled := m.Eval(p, truth)
	if res.Spent < modeled/3 || res.Spent > modeled*3 {
		t.Errorf("measured spend %.1f vs modeled %.1f (out of 3x band)", res.Spent, modeled)
	}
}

func TestBudgetTermination(t *testing.T) {
	e, _ := smallEngine(t)
	p := leftDeepHJ()
	full, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(p, full.Spent/4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("quarter budget should not complete")
	}
	if math.Abs(res.Spent-full.Spent/4) > 1e-6 {
		t.Errorf("aborted spend %.3f != budget %.3f", res.Spent, full.Spent/4)
	}
	// Forced termination discards results: fewer output rows than the
	// complete run.
	if res.OutRows >= full.OutRows && full.OutRows > 0 {
		t.Errorf("aborted run produced %d rows, full run %d", res.OutRows, full.OutRows)
	}
}

// TestSpillRunMonitorsSelectivity: spill-mode execution of the epp subtree
// yields an observed selectivity matching the data's 1/NDV ground truth.
func TestSpillRunMonitorsSelectivity(t *testing.T) {
	e, _ := smallEngine(t)
	p := leftDeepHJ()
	res, st, err := e.SpillRun(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("unbudgeted spill did not complete")
	}
	sel := ObservedSelectivity(st)
	want := 1.0 / 400
	if sel < want/2 || sel > want*2 {
		t.Errorf("observed selectivity %g, want ≈%g", sel, want)
	}
	// Spilling must cost no more than the full plan: the downstream join
	// is never executed.
	fullRun, _ := e.Run(p, 0)
	if res.Spent > fullRun.Spent {
		t.Errorf("spill spend %.1f exceeds full run %.1f", res.Spent, fullRun.Spent)
	}
	// Spilling on a predicate the plan does not apply fails cleanly.
	sub := plan.New(&plan.Node{Kind: plan.SeqScan, Rel: 0})
	if _, _, err := e.SpillRun(sub, 1, 0); err == nil {
		t.Error("spill on absent predicate should error")
	}
}

// TestOperatorsAgree: hash, merge and (index) nested-loop joins must
// produce identical result cardinalities for the same logical join.
func TestOperatorsAgree(t *testing.T) {
	e, _ := smallEngine(t)
	mk := func(kind plan.OpKind) *plan.Plan {
		l := &plan.Node{Kind: plan.SeqScan, Rel: 0}
		r := &plan.Node{Kind: plan.SeqScan, Rel: 1}
		var root *plan.Node
		switch kind {
		case plan.MergeJoin:
			root = &plan.Node{Kind: plan.MergeJoin, Rel: -1, JoinIDs: []int{0},
				Left:  &plan.Node{Kind: plan.Sort, Rel: -1, Left: l},
				Right: &plan.Node{Kind: plan.Sort, Rel: -1, Left: r}}
		default:
			root = &plan.Node{Kind: kind, Rel: -1, JoinIDs: []int{0}, Left: l, Right: r}
		}
		return plan.New(root)
	}
	var counts []int64
	for _, kind := range []plan.OpKind{plan.HashJoin, plan.MergeJoin, plan.NestLoop, plan.IndexNestLoop} {
		res, err := e.Run(mk(kind), 0)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		counts = append(counts, res.OutRows)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("operator cardinality disagreement: %v", counts)
		}
	}
	if counts[0] == 0 {
		t.Fatal("join produced no rows; generator domains broken")
	}
}

// TestOptimalPlanExecutes: plans straight from the optimizer must run on
// the row engine.
func TestOptimalPlanExecutes(t *testing.T) {
	e, m := smallEngine(t)
	o := optimizer.MustNew(m)
	truth := cost.Location{1.0 / 400, 1.0 / 1000}
	p, _ := o.Optimize(truth)
	res, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("optimal plan did not complete")
	}
}

func TestRowCap(t *testing.T) {
	e, _ := smallEngine(t)
	e.RowCap = 50
	p := plan.New(&plan.Node{Kind: plan.SeqScan, Rel: 1})
	res, err := e.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[p.Root].LeftRows != 50 {
		t.Errorf("scanned %d rows, cap is 50", res.Stats[p.Root].LeftRows)
	}
}

func TestColumnValueProperties(t *testing.T) {
	col := catalog.Column{Name: "c", Distinct: 37, Min: 0, Max: 100}
	seen := map[Value]bool{}
	for row := int64(0); row < 5000; row++ {
		v := ColumnValue(col, row)
		if v < 1 || v > 37 {
			t.Fatalf("value %d outside 1..37", v)
		}
		seen[v] = true
		if ColumnValue(col, row) != v {
			t.Fatal("not deterministic")
		}
	}
	if len(seen) != 37 {
		t.Errorf("saw %d distinct values, want 37", len(seen))
	}
	if NormalizedValue(col, 1) != 0 || NormalizedValue(col, 37) != 100 {
		t.Errorf("normalization endpoints wrong: %g, %g",
			NormalizedValue(col, 1), NormalizedValue(col, 37))
	}
	one := catalog.Column{Name: "k", Distinct: 1, Min: 5, Max: 9}
	if NormalizedValue(one, 1) != 5 {
		t.Error("single-value column should normalize to Min")
	}
}

func TestObservedSelectivityEdge(t *testing.T) {
	if ObservedSelectivity(nil) != 0 {
		t.Error("nil stats should give 0")
	}
	if ObservedSelectivity(&NodeStats{OutRows: 5}) != 0 {
		t.Error("zero inputs should give 0")
	}
}

func TestAggregateOnRows(t *testing.T) {
	q := sqlmini.MustParse(smallCatalog(), `
		SELECT * FROM part p, lineitem l
		WHERE p.p_partkey = l.l_partkey
		GROUP BY p.p_price`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	o := optimizer.MustNew(m)
	truth := cost.Location{1.0 / 400}
	p, _ := o.Optimize(truth)
	if p.Root.Kind != plan.Aggregate {
		t.Fatalf("root = %v", p.Root.Kind)
	}
	e := &Engine{Query: q, Params: cost.PostgresLike()}
	res, err := e.Run(p, 0)
	if err != nil || !res.Completed {
		t.Fatalf("run: %v %+v", err, res)
	}
	// Groups are bounded by the column's NDV (100 price values) and by the
	// join output.
	if res.OutRows < 1 || res.OutRows > 100 {
		t.Errorf("groups = %d, want within (0,100]", res.OutRows)
	}
	if res.OutRows >= res.Stats[p.Root].LeftRows {
		t.Errorf("aggregation did not reduce: %d groups from %d rows",
			res.OutRows, res.Stats[p.Root].LeftRows)
	}
	// Model predicts group count in the same ballpark.
	tree := m.EvalTree(p, truth)
	want := tree[p.Root].Rows
	if got := float64(res.OutRows); got < want/2 || got > want*2 {
		t.Errorf("measured %g groups, model predicts %g", got, want)
	}
}

func TestFilterHoldsAllOps(t *testing.T) {
	mk := func(op query.FilterOp, args ...float64) query.Filter {
		return query.Filter{Op: op, Args: args}
	}
	cases := []struct {
		f    query.Filter
		v    float64
		want bool
	}{
		{mk(query.OpEq, 5), 5, true},
		{mk(query.OpEq, 5), 6, false},
		{mk(query.OpNe, 5), 6, true},
		{mk(query.OpLt, 5), 4, true},
		{mk(query.OpLe, 5), 5, true},
		{mk(query.OpGt, 5), 6, true},
		{mk(query.OpGe, 5), 5, true},
		{mk(query.OpBetween, 2, 8), 5, true},
		{mk(query.OpBetween, 2, 8), 9, false},
		{mk(query.OpIn, 1, 5, 9), 5, true},
		{mk(query.OpIn, 1, 5, 9), 4, false},
		{query.Filter{Op: query.FilterOp(99)}, 1, false},
	}
	for _, tc := range cases {
		if got := filterHolds(tc.f, tc.v); got != tc.want {
			t.Errorf("filterHolds(%v %v, %g) = %v", tc.f.Op, tc.f.Args, tc.v, got)
		}
	}
}

func TestColumnValueSkewed(t *testing.T) {
	uniform := catalog.Column{Name: "u", Distinct: 100, Min: 0, Max: 100}
	skewed := catalog.Column{Name: "u", Distinct: 100, Min: 0, Max: 100, Skew: 3}
	const rows = 20000
	countLow := func(col catalog.Column) int {
		n := 0
		for r := int64(0); r < rows; r++ {
			v := ColumnValue(col, r)
			if v < 1 || v > 100 {
				t.Fatalf("value %d outside domain", v)
			}
			if v <= 10 {
				n++
			}
		}
		return n
	}
	lu, ls := countLow(uniform), countLow(skewed)
	// Uniform: ~10% below 10; skewed: the heavy-hitter mass concentrates
	// there.
	if lu < rows/20 || lu > rows/5 {
		t.Errorf("uniform low-mass %d out of expected band", lu)
	}
	if ls < 3*lu {
		t.Errorf("skewed low-mass %d not concentrated (uniform %d)", ls, lu)
	}
}

func TestAdapterPartialSpillLearning(t *testing.T) {
	e, _ := smallEngine(t)
	a := &Adapter{E: e}
	// Find the full spill cost, then give half: learning must report a
	// conservative positive bound below the ground truth.
	full, ok := a.ExecuteSpill(leftDeepHJ(), 0, 1e12)
	if !ok || !full.Completed {
		t.Fatal("setup failed")
	}
	res, ok := a.ExecuteSpill(leftDeepHJ(), 0, full.Spent/2)
	if !ok {
		t.Fatal("spill rejected")
	}
	if res.Completed {
		t.Fatal("half budget should not complete")
	}
	truth := 1.0 / 400
	if res.Learned < 0 || res.Learned > truth*1.5 {
		t.Errorf("partial learned %g outside [0, ~%g]", res.Learned, truth)
	}
	if res.Spent != full.Spent/2 {
		t.Errorf("spent %g != budget", res.Spent)
	}
}

func TestAdapterExecute(t *testing.T) {
	e, _ := smallEngine(t)
	a := &Adapter{E: e}
	p := leftDeepHJ()
	full := a.Execute(p, 1e12)
	if !full.Completed {
		t.Fatal("unbudgeted adapter run failed")
	}
	part := a.Execute(p, full.Spent/3)
	if part.Completed || part.Spent != full.Spent/3 {
		t.Errorf("budgeted adapter run: %+v", part)
	}
}
