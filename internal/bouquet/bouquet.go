// Package bouquet implements the PlanBouquet algorithm of Dutt & Haritsa
// (TODS 2016), the baseline the paper improves upon: selectivity discovery
// through cost-budgeted executions of the plans on doubling iso-cost
// contours, together with the anorexic reduction of the plan diagram
// (Harish et al., VLDB 2007) that keeps the contour plan density ρ — and
// hence the MSO guarantee 4·(1+λ)·ρ — practical. The package also provides
// the budgeted execution loop over a subspace that SpillBound and
// AlignedBound reuse as their terminal 1-D phase.
package bouquet

import (
	"sort"

	"repro/internal/ess"
)

// Assignment maps ESS cells to plan identities; *ess.Space is the identity
// assignment (each cell's optimal plan) and *Diagram is a reduced one.
type Assignment interface {
	// PlanIDAt returns the POSP index of the plan assigned to cell ci.
	PlanIDAt(ci int) int
}

// Diagram is a plan diagram over a Space after anorexic reduction: each
// cell is assigned a plan whose cost at the cell is within (1+Lambda) of
// optimal, drawn from a (much smaller) subset of the POSP.
type Diagram struct {
	// Space is the underlying ESS.
	Space *ess.Space
	// Lambda is the cost-inflation threshold used for the reduction
	// (paper Sec 6.2 uses the default 0.2).
	Lambda float64

	planIdx []int32
	kept    map[int]bool
}

// PlanIDAt returns the plan assigned to cell ci after reduction.
func (d *Diagram) PlanIDAt(ci int) int { return int(d.planIdx[ci]) }

// PlanCount returns the number of distinct plans surviving the reduction.
func (d *Diagram) PlanCount() int { return len(d.kept) }

// Reduce performs anorexic reduction of the space's plan diagram with
// threshold lambda: plans are greedily swallowed (smallest optimality
// region first) by re-assigning each of their cells to another surviving
// plan whose cost there stays within (1+lambda) of optimal. The resulting
// diagram retains near-optimality everywhere while typically shrinking the
// plan count dramatically.
func Reduce(s *ess.Space, lambda float64) *Diagram {
	g := s.Grid
	n := g.Size()
	d := &Diagram{Space: s, Lambda: lambda, planIdx: make([]int32, n), kept: map[int]bool{}}
	for ci := 0; ci < n; ci++ {
		d.planIdx[ci] = int32(s.PlanIDAt(ci))
		d.kept[s.PlanIDAt(ci)] = true
	}
	if lambda <= 0 {
		return d
	}

	// Cells per plan, for area ordering and re-assignment.
	cellsOf := map[int][]int{}
	for ci := 0; ci < n; ci++ {
		id := s.PlanIDAt(ci)
		cellsOf[id] = append(cellsOf[id], ci)
	}
	order := make([]int, 0, len(cellsOf))
	for id := range cellsOf {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if len(cellsOf[a]) != len(cellsOf[b]) {
			return len(cellsOf[a]) < len(cellsOf[b])
		}
		return a < b
	})

	plans := s.Plans()
	for _, victim := range order {
		if len(d.kept) == 1 {
			break
		}
		// Try to re-home every cell of the victim within threshold.
		type move struct {
			ci int
			to int32
		}
		moves := make([]move, 0, len(cellsOf[victim]))
		ok := true
		for _, ci := range cellsOf[victim] {
			if int(d.planIdx[ci]) != victim {
				continue // already re-homed by an earlier swallow
			}
			loc := g.Location(ci)
			limit := s.CostAt(ci) * (1 + lambda)
			bestID, bestCost := -1, limit
			for id := range d.kept {
				if id == victim {
					continue
				}
				if c := s.Model.Eval(plans[id], loc); c <= bestCost {
					bestID, bestCost = id, c
				}
			}
			if bestID < 0 {
				ok = false
				break
			}
			moves = append(moves, move{ci, int32(bestID)})
		}
		if !ok {
			continue
		}
		for _, mv := range moves {
			d.planIdx[mv.ci] = mv.to
			// Track the moved cell under its new owner so a later swallow
			// of that owner re-homes it again instead of stranding it.
			cellsOf[int(mv.to)] = append(cellsOf[int(mv.to)], mv.ci)
		}
		delete(d.kept, victim)
	}
	return d
}

// ReductionStats quantifies an anorexic reduction's effect (Harish et al.'s
// headline: plan diagrams collapse to ~10 plans within a 20% cost
// threshold).
type ReductionStats struct {
	// POSPSize is the plan count before reduction.
	POSPSize int
	// ReducedSize is the plan count after reduction.
	ReducedSize int
	// MaxInflation is the largest assigned-vs-optimal cost ratio over all
	// cells (bounded by 1+Lambda by construction).
	MaxInflation float64
	// AvgInflation is the mean ratio over all cells.
	AvgInflation float64
}

// Stats computes the diagram's reduction statistics.
func (d *Diagram) Stats() ReductionStats {
	s := d.Space
	g := s.Grid
	st := ReductionStats{POSPSize: len(s.Plans()), ReducedSize: d.PlanCount(), MaxInflation: 1}
	sum := 0.0
	for ci := 0; ci < g.Size(); ci++ {
		ratio := 1.0
		if id := d.PlanIDAt(ci); id != s.PlanIDAt(ci) {
			ratio = s.Model.Eval(s.Plans()[id], g.Location(ci)) / s.CostAt(ci)
		}
		sum += ratio
		if ratio > st.MaxInflation {
			st.MaxInflation = ratio
		}
	}
	st.AvgInflation = sum / float64(g.Size())
	return st
}

// ContourDensities returns, for each contour budget, the number of distinct
// plans the assignment places on the contour's cells, plus the maximum —
// the ρ of the MSO guarantee.
func ContourDensities(s *ess.Space, a Assignment, costs []float64) (densities []int, rho int) {
	full := s.Full()
	densities = make([]int, len(costs))
	for i, cc := range costs {
		seen := map[int]bool{}
		for _, ci := range full.ContourCells(cc) {
			seen[a.PlanIDAt(ci)] = true
		}
		densities[i] = len(seen)
		if len(seen) > rho {
			rho = len(seen)
		}
	}
	return densities, rho
}

// Guarantee returns PlanBouquet's MSO guarantee 4·(1+λ)·ρ for the reduced
// diagram under the given contour budgets.
func (d *Diagram) Guarantee(costs []float64) float64 {
	_, rho := ContourDensities(d.Space, d, costs)
	return 4 * (1 + d.Lambda) * float64(rho)
}

// GuaranteeWithRatio returns PlanBouquet's bound (1+λ)·ρ·r²/(r-1) under a
// geometric contour ratio r: executing all ρ plans on every contour up to
// k+1 costs at most (1+λ)ρ·sum r^{i-1} <= (1+λ)ρ·r²·r^{k-1}/(r-1), against
// an oracle floor of r^{k-1}·CC1. The expression is minimized at exactly
// r=2 — the paper's footnote 3: "a doubling factor minimizes the MSO
// guarantee" for PlanBouquet (unlike SpillBound, whose optimum is ≈1.8).
func GuaranteeWithRatio(rho int, lambda, r float64) float64 {
	if r <= 1 {
		panic("bouquet: contour ratio must exceed 1")
	}
	return (1 + lambda) * float64(rho) * r * r / (r - 1)
}
