package bouquet

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/optimizer"
	"repro/internal/sqlmini"
)

func buildSpace(t *testing.T, res int) *ess.Space {
	t.Helper()
	c := catalog.New("test")
	c.MustAddTable(&catalog.Table{
		Name: "part", Rows: 20000, RowBytes: 100,
		Columns: []catalog.Column{
			{Name: "p_partkey", Distinct: 20000, Min: 1, Max: 20000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "lineitem", Rows: 600000, RowBytes: 120,
		Columns: []catalog.Column{
			{Name: "l_partkey", Distinct: 20000, Min: 1, Max: 20000},
			{Name: "l_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	c.MustAddTable(&catalog.Table{
		Name: "orders", Rows: 150000, RowBytes: 80,
		Columns: []catalog.Column{
			{Name: "o_orderkey", Distinct: 150000, Min: 1, Max: 150000},
		},
	})
	q := sqlmini.MustParse(c, `
		SELECT * FROM part p, lineitem l, orders o
		WHERE p.p_partkey = l.l_partkey AND l.l_orderkey = o.o_orderkey`)
	if err := q.MarkEPPs("p.p_partkey = l.l_partkey", "l.l_orderkey = o.o_orderkey"); err != nil {
		t.Fatal(err)
	}
	m := cost.MustNewModel(q, cost.PostgresLike())
	return ess.Build(optimizer.MustNew(m), ess.NewGrid(2, res, 1e-6))
}

func TestReduceKeepsNearOptimality(t *testing.T) {
	s := buildSpace(t, 10)
	d := Reduce(s, 0.2)
	if d.PlanCount() > len(s.Plans()) {
		t.Fatalf("reduction grew the plan set: %d > %d", d.PlanCount(), len(s.Plans()))
	}
	g := s.Grid
	for ci := 0; ci < g.Size(); ci++ {
		id := d.PlanIDAt(ci)
		c := s.Model.Eval(s.Plans()[id], g.Location(ci))
		if c > s.CostAt(ci)*1.2*(1+1e-9) {
			t.Fatalf("cell %d: reduced plan cost %g exceeds (1+λ)·optimal %g", ci, c, s.CostAt(ci)*1.2)
		}
	}
}

func TestReduceShrinksPlanCount(t *testing.T) {
	s := buildSpace(t, 10)
	if len(s.Plans()) < 3 {
		t.Skip("POSP too small to exercise reduction")
	}
	d := Reduce(s, 0.2)
	if d.PlanCount() >= len(s.Plans()) {
		t.Errorf("reduction kept all %d plans", len(s.Plans()))
	}
	// A generous threshold should shrink at least as much as a tight one.
	loose := Reduce(s, 1.0)
	if loose.PlanCount() > d.PlanCount() {
		t.Errorf("λ=1.0 kept %d plans, more than λ=0.2's %d", loose.PlanCount(), d.PlanCount())
	}
}

func TestReduceZeroLambdaIsIdentity(t *testing.T) {
	s := buildSpace(t, 6)
	d := Reduce(s, 0)
	for ci := 0; ci < s.Grid.Size(); ci++ {
		if d.PlanIDAt(ci) != s.PlanIDAt(ci) {
			t.Fatalf("cell %d reassigned under λ=0", ci)
		}
	}
	if d.PlanCount() != len(s.Plans()) {
		t.Errorf("λ=0 plan count %d != POSP %d", d.PlanCount(), len(s.Plans()))
	}
}

func TestReductionStats(t *testing.T) {
	s := buildSpace(t, 10)
	d := Reduce(s, 0.2)
	st := d.Stats()
	if st.POSPSize != len(s.Plans()) || st.ReducedSize != d.PlanCount() {
		t.Errorf("stats sizes %d/%d vs %d/%d", st.POSPSize, st.ReducedSize, len(s.Plans()), d.PlanCount())
	}
	if st.MaxInflation > 1.2*(1+1e-9) {
		t.Errorf("MaxInflation %.4f exceeds 1+λ", st.MaxInflation)
	}
	if st.AvgInflation < 1 || st.AvgInflation > st.MaxInflation {
		t.Errorf("AvgInflation %.4f out of [1, max]", st.AvgInflation)
	}
	// Identity reduction has no inflation.
	id := Reduce(s, 0)
	if got := id.Stats(); got.MaxInflation != 1 || got.AvgInflation != 1 {
		t.Errorf("identity reduction inflation = %+v", got)
	}
}

func TestContourDensities(t *testing.T) {
	s := buildSpace(t, 10)
	costs := s.ContourCosts(2)
	dens, rho := ContourDensities(s, s, costs)
	if len(dens) != len(costs) {
		t.Fatalf("densities len = %d", len(dens))
	}
	maxSeen := 0
	for _, d := range dens {
		if d < 1 {
			t.Errorf("contour density %d < 1", d)
		}
		if d > maxSeen {
			maxSeen = d
		}
	}
	if rho != maxSeen {
		t.Errorf("rho = %d, max density = %d", rho, maxSeen)
	}
	// Reduction must not increase any contour's density.
	red := Reduce(s, 0.2)
	densRed, rhoRed := ContourDensities(s, red, costs)
	_ = densRed
	if rhoRed > rho {
		t.Errorf("reduced rho %d exceeds unreduced %d", rhoRed, rho)
	}
}

func TestGuaranteeFormula(t *testing.T) {
	s := buildSpace(t, 10)
	d := Reduce(s, 0.2)
	costs := s.ContourCosts(2)
	_, rho := ContourDensities(s, d, costs)
	want := 4 * 1.2 * float64(rho)
	if got := d.Guarantee(costs); math.Abs(got-want) > 1e-9 {
		t.Errorf("Guarantee = %g, want %g", got, want)
	}
}

func TestRunCompletes(t *testing.T) {
	s := buildSpace(t, 10)
	d := Reduce(s, 0.2)
	for _, truth := range []cost.Location{
		{1e-6, 1e-6}, {1e-3, 1e-4}, {1, 1}, {1e-5, 0.9},
	} {
		e := engine.New(s.Model, truth)
		out := Run(d, e, ess.CostDoublingRatio)
		if !out.Completed {
			t.Fatalf("truth %v: bouquet did not complete", truth)
		}
		if out.TotalCost <= 0 {
			t.Errorf("truth %v: total cost %g", truth, out.TotalCost)
		}
		last := out.Steps[len(out.Steps)-1]
		if !last.Completed || last.PlanID != out.FinalPlanID {
			t.Errorf("truth %v: final step inconsistent: %+v", truth, last)
		}
		// Only the final step completes.
		for _, st := range out.Steps[:len(out.Steps)-1] {
			if st.Completed {
				t.Errorf("truth %v: non-final step completed: %v", truth, st)
			}
		}
	}
}

// TestRunRespectsGuarantee verifies the bouquet's MSO bound empirically over
// the whole grid: SubOpt(q_a) <= 4(1+λ)ρ for every q_a.
func TestRunRespectsGuarantee(t *testing.T) {
	s := buildSpace(t, 10)
	d := Reduce(s, 0.2)
	costs := s.ContourCosts(2)
	bound := d.Guarantee(costs)
	g := s.Grid
	worst := 0.0
	for ci := 0; ci < g.Size(); ci++ {
		truth := g.Location(ci)
		e := engine.New(s.Model, truth)
		out := Run(d, e, 2)
		subOpt := out.TotalCost / s.CostAt(ci)
		if subOpt > worst {
			worst = subOpt
		}
	}
	if worst > bound {
		t.Errorf("empirical MSO %g exceeds guarantee %g", worst, bound)
	}
	if worst < 1 {
		t.Errorf("MSO %g below 1 — accounting is broken", worst)
	}
}

func TestBudgetsDoubleAcrossContours(t *testing.T) {
	s := buildSpace(t, 10)
	d := Reduce(s, 0.2)
	e := engine.New(s.Model, cost.Location{0.5, 0.5})
	out := Run(d, e, 2)
	for i := 1; i < len(out.Steps); i++ {
		prev, cur := out.Steps[i-1], out.Steps[i]
		if cur.Contour == prev.Contour && cur.Budget != prev.Budget {
			t.Errorf("same contour, different budgets: %v vs %v", prev, cur)
		}
		if cur.Contour < prev.Contour {
			t.Errorf("contour went backwards: %v after %v", cur, prev)
		}
	}
}

func TestRunSubspace1D(t *testing.T) {
	s := buildSpace(t, 10)
	truth := cost.Location{s.Grid.Points[0][4], 0.3}
	e := engine.New(s.Model, truth)
	sub := s.Full().Fix(0, 4) // dimension 0 fully learnt
	costs := s.ContourCosts(2)
	out := RunSubspace(s, s, e, costs, 2, sub, 1)
	if !out.Completed {
		t.Fatal("1D subspace run did not complete")
	}
	for _, st := range out.Steps {
		if st.Contour < 2 {
			t.Errorf("step before the starting contour: %v", st)
		}
	}
}

func TestStepString(t *testing.T) {
	st := Step{Contour: 2, PlanID: 7, Budget: 2048, Completed: false}
	if got := st.String(); got != "IC3: P7|2048 ✗" {
		t.Errorf("String = %q", got)
	}
	st.Completed = true
	if got := st.String(); got != "IC3: P7|2048 ✓" {
		t.Errorf("String = %q", got)
	}
}
