package bouquet

import (
	"context"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/runstate"
	"repro/internal/telemetry"
)

// Step records one budgeted plan execution of the bouquet protocol.
type Step struct {
	// Contour is the contour index the plan was drawn from.
	Contour int
	// PlanID is the executed plan's POSP index.
	PlanID int
	// Budget is the cost limit assigned.
	Budget float64
	// Spent is the cost charged (full plan cost when completed, the budget
	// otherwise).
	Spent float64
	// Completed reports whether the plan finished within its budget.
	Completed bool
}

// Outcome is the result of a bouquet-style discovery run.
type Outcome struct {
	// Steps lists every budgeted execution in order.
	Steps []Step
	// TotalCost is the summed Spent of all steps.
	TotalCost float64
	// Completed reports whether some execution produced the full result.
	Completed bool
	// FinalPlanID is the plan that completed the query.
	FinalPlanID int
}

// Run executes the PlanBouquet protocol (paper Sec 1.1): starting at the
// cheapest contour, sequentially run each contour plan under the contour's
// budget (inflated by the diagram's reduction threshold), jumping to the
// next contour when all fail. The engine carries the hidden true location.
func Run(d *Diagram, e engine.Executor, ratio float64) Outcome {
	out, _ := RunContext(context.Background(), d, e, ratio)
	return out
}

// RunContext is Run with cancellation: the context is checked at every
// contour iteration and execution boundary, and the partial outcome is
// returned alongside the abort error. Fault plans attached to the context
// surface the same way (see internal/faults).
func RunContext(ctx context.Context, d *Diagram, e engine.Executor, ratio float64) (Outcome, error) {
	costs := d.Space.ContourCosts(ratio)
	return RunSubspaceContext(ctx, d.Space, d, e, costs, 0, d.Space.Full(), 1+d.Lambda)
}

// RunSubspace is the budgeted execution loop over an arbitrary subspace and
// starting contour, used directly by Run and as the terminal 1-D phase of
// SpillBound and AlignedBound (paper Sec 4.1: "we simply invoke the
// standard PlanBouquet with only the [remaining] epp, starting from the
// contour currently being explored"). Budgets are cc*inflate.
func RunSubspace(s *ess.Space, a Assignment, e engine.Executor, costs []float64, start int, sub ess.Subspace, inflate float64) Outcome {
	out, _ := RunSubspaceContext(context.Background(), s, a, e, costs, start, sub, inflate)
	return out
}

// RunSubspaceContext is RunSubspace with cancellation and error-aware
// execution. On abort (cancellation, deadline, or an execution failure that
// survived the substrate's retry policy) it returns the steps completed so
// far together with the error; the caller decides whether to degrade or
// propagate.
func RunSubspaceContext(ctx context.Context, s *ess.Space, a Assignment, e engine.Executor, costs []float64, start int, sub ess.Subspace, inflate float64) (Outcome, error) {
	ce := engine.AsContextExecutor(e)
	rec := telemetry.From(ctx)
	var out Outcome
	for i := start; i < len(costs); i++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		// Contour boundary: persist the durable restart point (and let the
		// crash-point injector fire). A crash inside this contour redoes at
		// most this contour's executions on resume.
		if err := runstate.Checkpoint(ctx, i); err != nil {
			return out, err
		}
		rec.EnterContour(i + 1)
		cells := sub.ContourCellsCached(costs[i])
		for _, id := range distinctPlans(a, cells) {
			budget := costs[i] * inflate
			res, err := ce.ExecuteCtx(ctx, s.Plans()[id], budget)
			if err != nil && !engine.IsBudgetAbort(err) {
				return out, err
			}
			// A watchdog budget abort is a failed step, not a failed run: the
			// clamped charge stands in the ledger and discovery moves to the
			// next plan, then the next contour — the shape the MSO analysis
			// already accounts for.
			rec.Record(telemetry.Event{
				Kind: telemetry.PlanExec, Contour: i + 1, Dim: -1, PlanID: id,
				Budget: budget, Spent: res.Spent, Completed: res.Completed,
			})
			out.Steps = append(out.Steps, Step{
				Contour: i, PlanID: id, Budget: budget,
				Spent: res.Spent, Completed: res.Completed,
			})
			out.TotalCost += res.Spent
			runstate.Spend(ctx, res.Spent)
			if res.Completed {
				out.Completed = true
				out.FinalPlanID = id
				return out, nil
			}
		}
	}
	// Unreachable under PCM: the final contour consists solely of the
	// subspace terminus, whose plan's cost at any dominated true location
	// is within the final budget. Guard against numeric edge cases by
	// running that plan unbudgeted.
	ci := sub.MaxCorner()
	p := s.Plans()[a.PlanIDAt(ci)]
	res, err := ce.ExecuteCtx(ctx, p, math.Inf(1))
	if err != nil {
		return out, err
	}
	rec.Record(telemetry.Event{
		Kind: telemetry.PlanExec, Contour: len(costs), Dim: -1, PlanID: a.PlanIDAt(ci),
		Budget: res.Spent, Spent: res.Spent, Completed: true,
	})
	out.Steps = append(out.Steps, Step{
		Contour: len(costs) - 1, PlanID: a.PlanIDAt(ci), Budget: res.Spent, Spent: res.Spent, Completed: true,
	})
	out.TotalCost += res.Spent
	runstate.Spend(ctx, res.Spent)
	out.Completed = true
	out.FinalPlanID = a.PlanIDAt(ci)
	return out, nil
}

// distinctPlans returns the distinct plan IDs assigned to the cells, in
// first-appearance order over ascending cell index (a deterministic
// sequential order for the contour's plans).
func distinctPlans(a Assignment, cells []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, ci := range cells {
		id := a.PlanIDAt(ci)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// String renders a step compactly, e.g. "IC3: P7|2048 ✗".
func (st Step) String() string {
	mark := "✗"
	if st.Completed {
		mark = "✓"
	}
	return fmt.Sprintf("IC%d: P%d|%.4g %s", st.Contour+1, st.PlanID, st.Budget, mark)
}
