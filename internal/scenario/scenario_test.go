package scenario

import (
	"testing"
)

func TestSuiteDeterministicAndComplete(t *testing.T) {
	a := Suite(7, 3)
	b := Suite(7, 3)
	if len(a) != 9 {
		t.Fatalf("suite size %d, want 9", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("scenario %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	counts := map[Regime]int{}
	for _, sc := range a {
		counts[sc.Regime]++
	}
	for _, r := range Regimes() {
		if counts[r] != 3 {
			t.Errorf("regime %s has %d scenarios, want 3", r, counts[r])
		}
	}
	if c := Suite(8, 3); c[0] == a[0] && c[4] == a[4] {
		t.Error("different seeds produced identical suites")
	}
}

func TestSuitePrefixStableAcrossSizes(t *testing.T) {
	small := Suite(1, 1)
	big := Suite(1, 5)
	for _, sc := range small {
		found := false
		for _, other := range big {
			if other.Name == sc.Name {
				found = true
				if other != sc {
					t.Errorf("%s differs between suite sizes: %+v vs %+v", sc.Name, sc, other)
				}
			}
		}
		if !found {
			t.Errorf("%s missing from the larger suite", sc.Name)
		}
	}
}

func TestCanonicalScenarioClasses(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		suite := Suite(seed, 4)
		for _, sc := range suite {
			switch sc.Regime {
			case Benign:
				if sc.Knobs.BudgetOverrun > 0 || sc.Knobs.SkewLearnedFactor > 4 || sc.Knobs.CrashAtCheckpoint > 0 {
					t.Errorf("seed %d: benign scenario with non-benign knobs: %+v", seed, sc)
				}
				if sc.Knobs.SkewLearnedAt == 0 {
					t.Errorf("seed %d: benign scenario without skew: %+v", seed, sc)
				}
			case Correlated:
				if sc.Knobs.BudgetOverrun <= 1 {
					t.Errorf("seed %d: correlated scenario without overrun: %+v", seed, sc)
				}
			case Adversarial:
				hasFault := sc.Knobs.SkewLearnedFactor >= 1e6 || sc.Knobs.FailExecAt > 0 || sc.Knobs.CrashAtCheckpoint > 0
				if !hasFault {
					t.Errorf("seed %d: adversarial scenario without adversarial knobs: %+v", seed, sc)
				}
			}
		}
		// The canonical leads every drill relies on: adversarial-1 is always
		// escape-scale skew, regret-correlated-1 always overruns.
		if sc, _ := ByName(seed, "adversarial-1"); sc.Knobs.SkewLearnedFactor < 1e6 {
			t.Errorf("seed %d: adversarial-1 is not escape-scale skew: %+v", seed, sc)
		}
		if sc, _ := ByName(seed, "regret-correlated-1"); sc.Knobs.BudgetOverrun <= 1 {
			t.Errorf("seed %d: regret-correlated-1 has no budget overrun: %+v", seed, sc)
		}
	}
}

func TestByName(t *testing.T) {
	suite := Suite(3, 2)
	for _, sc := range suite {
		got, ok := ByName(3, sc.Name)
		if !ok {
			t.Fatalf("ByName(%q) not found", sc.Name)
		}
		if got != sc {
			t.Errorf("ByName(%q) = %+v, want %+v", sc.Name, got, sc)
		}
	}
	for _, bad := range []string{"", "benign", "benign-0", "chaotic-1", "adversarial--1"} {
		if _, ok := ByName(3, bad); ok {
			t.Errorf("ByName(%q) unexpectedly resolved", bad)
		}
	}
}

func TestKnobsPlanIsFresh(t *testing.T) {
	k := Knobs{SkewLearnedAt: 1, SkewLearnedFactor: 2}
	p1, p2 := k.Plan(), k.Plan()
	if p1 == p2 {
		t.Fatal("Plan returned a shared instance")
	}
	p1.OnLearned(0.5)
	if got := p2.Injected(); got != 0 {
		t.Errorf("counters leaked across Plan instances: %d", got)
	}
}

func TestParseRegime(t *testing.T) {
	for _, r := range Regimes() {
		got, err := ParseRegime(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRegime(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRegime("nope"); err == nil {
		t.Error("ParseRegime accepted an unknown name")
	}
}
