// Package scenario generates seeded error-regime scenario suites: named
// compositions of fault knobs that sweep the three regimes of
// cardinality-estimation error identified by the q-error-regimes study
// (PAPERS.md, "When Does q-error Predict Plan Regret?"):
//
//   - benign: estimation error is present but does not translate into plan
//     regret — monitoring skew stays inside the ESS and plan choice is
//     stable, so discovery cost tracks the clean run.
//   - regret-correlated: the error magnitude predicts the damage — operators
//     overrun their assigned budgets proportionally and moderate skew
//     perturbs the discovery path, so cost grows with the error and the
//     budget watchdog is the guardrail under test.
//   - adversarial: regret is decoupled from the error magnitude — monitoring
//     produces selectivities the ESS cannot contain (the guard's escape
//     fallback fires), execution steps fail transiently, or the process dies
//     at a checkpoint; a small q-error says nothing about the blast radius.
//
// Scenarios compose the existing fault knobs (SkewLearnedAt/Factor, latency,
// BudgetOverrun, exec failures, crash points) into deterministic, replayable
// plans: identical (seed, perRegime) inputs yield identical suites, and the
// first scenario of every regime has a pinned fault class so drills (the
// replay harness, the robustness atlas) can rely on a specific guardrail
// firing.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/faults"
)

// Regime classifies a scenario by how its estimation error relates to plan
// regret (the three regimes of the q-error-regimes paper).
type Regime int

// The three error regimes, in sweep order.
const (
	// Benign error perturbs monitoring without changing plan quality.
	Benign Regime = iota
	// Correlated error causes damage proportional to its magnitude
	// (budget overruns; the watchdog's regime).
	Correlated
	// Adversarial error causes damage decoupled from its magnitude
	// (ESS escapes, transient failures, checkpoint crashes).
	Adversarial
)

// Regimes returns the regimes in canonical sweep order.
func Regimes() []Regime { return []Regime{Benign, Correlated, Adversarial} }

// String names the regime as reported in per-regime summaries.
func (r Regime) String() string {
	switch r {
	case Benign:
		return "benign"
	case Correlated:
		return "regret-correlated"
	case Adversarial:
		return "adversarial"
	}
	return fmt.Sprintf("Regime(%d)", int(r))
}

// ParseRegime resolves a regime name (as produced by String).
func ParseRegime(name string) (Regime, error) {
	for _, r := range Regimes() {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown regime %q", name)
}

// Knobs is the copyable fault configuration of one scenario — the same
// fields as faults.Plan without its runtime counters, so a suite can be
// stored, serialized and re-instantiated per run (fault counters are
// per-run state).
type Knobs struct {
	FailExecAt        int
	FailExecCount     int
	PanicExecAt       int
	FailCostEvalAt    int
	Latency           time.Duration
	BudgetOverrun     float64
	SkewLearnedAt     int
	SkewLearnedFactor float64
	CrashAtCheckpoint int
}

// Plan instantiates a fresh fault plan from the knobs. Every run needs its
// own plan: the injection counters are per-run state.
func (k Knobs) Plan() *faults.Plan {
	return &faults.Plan{
		FailExecAt:        k.FailExecAt,
		FailExecCount:     k.FailExecCount,
		PanicExecAt:       k.PanicExecAt,
		FailCostEvalAt:    k.FailCostEvalAt,
		Latency:           k.Latency,
		BudgetOverrun:     k.BudgetOverrun,
		SkewLearnedAt:     k.SkewLearnedAt,
		SkewLearnedFactor: k.SkewLearnedFactor,
		CrashAtCheckpoint: k.CrashAtCheckpoint,
	}
}

// Scenario is one named error-regime composition.
type Scenario struct {
	// Name is "<regime>-<n>" with n 1-based within the regime.
	Name string
	// Regime is the error regime the scenario exercises.
	Regime Regime
	// Knobs is the fault composition; instantiate with Knobs.Plan() per run.
	Knobs Knobs
}

// Suite generates perRegime scenarios for each of the three regimes,
// deterministically from the seed. Scenario classes within a regime follow a
// fixed rotation so the first scenario of each regime is canonical:
//
//   - benign-1..n: within-ESS monitoring skew (factor in [1/4, 4]); every
//     third adds injection latency.
//   - regret-correlated-1..n: a budget overrun whose factor grows with the
//     scenario's drawn error, composed with moderate skew on every second.
//   - adversarial-1 (and every odd index): escape-scale skew driving the
//     learned selectivity past the ESS boundary. adversarial-2 (and every
//     even index) alternates transient exec-failure bursts with checkpoint
//     crashes (crash knobs only fire on durable runs; elsewhere they are
//     inert).
func Suite(seed int64, perRegime int) []Scenario {
	if perRegime < 1 {
		perRegime = 1
	}
	var out []Scenario
	for _, r := range Regimes() {
		for i := 0; i < perRegime; i++ {
			out = append(out, Scenario{
				Name:   fmt.Sprintf("%s-%d", r, i+1),
				Regime: r,
				Knobs:  knobsFor(r, i, scenarioRNG(seed, r, i)),
			})
		}
	}
	return out
}

// scenarioRNG derives the per-scenario random stream from (seed, regime,
// index) alone, so a scenario's knobs are identical regardless of the suite
// size it was generated in — "adversarial-1" means the same faults in a
// 1-per-regime drill and a 10-per-regime atlas sweep.
func scenarioRNG(seed int64, r Regime, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + int64(r)*8191 + int64(i)*31 + 7))
}

// knobsFor draws one scenario's fault composition. i is the 0-based index
// within the regime; the class rotation is a function of i alone so suites
// of different sizes agree on their leading scenarios' classes.
func knobsFor(r Regime, i int, rng *rand.Rand) Knobs {
	var k Knobs
	switch r {
	case Benign:
		// Skew that stays well inside the unit selectivity range: the
		// monitoring observation is wrong but the discovery still converges
		// on a competitive plan (q-error without regret).
		k.SkewLearnedAt = 1 + rng.Intn(3)
		k.SkewLearnedFactor = 0.25 + rng.Float64()*3.75
		if i%3 == 2 {
			k.Latency = time.Duration(1+rng.Intn(3)) * time.Millisecond
		}
	case Correlated:
		// Damage proportional to the drawn error: the overrun factor is the
		// error, so bigger error means bigger charged cost until the watchdog
		// claws it back at the ceiling.
		err := 1.3 + rng.Float64()*1.7
		k.BudgetOverrun = err
		if i%2 == 1 {
			k.SkewLearnedAt = 1 + rng.Intn(2)
			k.SkewLearnedFactor = 2 + rng.Float64()*6
		}
	case Adversarial:
		switch i % 2 {
		case 0:
			// Escape-scale skew: any positive observation is pushed past 1,
			// outside the enumerated space — the guard's safe-path fallback
			// must complete the run (regret decoupled from error size).
			k.SkewLearnedAt = 1 + rng.Intn(3)
			k.SkewLearnedFactor = 1e6 * (1 + rng.Float64()*1e6)
		case 1:
			if i%4 == 1 {
				// Transient failure burst: exec errors the retry ladder must
				// absorb (or degrade past).
				k.FailExecAt = 1 + rng.Intn(3)
				k.FailExecCount = 1 + rng.Intn(3)
			} else {
				// Checkpoint crash: the process "dies" at a contour boundary.
				// Only durable runs observe checkpoints, so this knob is inert
				// on plain runs — replay drills pair it with durable requests.
				k.CrashAtCheckpoint = 1 + rng.Intn(2)
			}
		}
	}
	return k
}

// ByName regenerates the suite deterministically and returns the named
// scenario: the wire-friendly lookup used by the daemon's scenario-tagged
// run requests ("adversarial-1" resolves identically in every process with
// the same seed).
func ByName(seed int64, name string) (Scenario, bool) {
	var r Regime
	var n int
	found := false
	for _, reg := range Regimes() {
		var i int
		if _, err := fmt.Sscanf(name, reg.String()+"-%d", &i); err == nil && i >= 1 {
			r, n, found = reg, i, true
			break
		}
	}
	if !found {
		return Scenario{}, false
	}
	for _, sc := range Suite(seed, n) {
		if sc.Regime == r && sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
