// Circuit breaker for the session-build dependency: consecutive build
// failures open the circuit, rejections are immediate (no queueing behind a
// failing dependency), and after a cooldown a single half-open probe decides
// whether to close again.
package guard

import (
	"sync"
	"time"
)

// Breaker states, exported as the values of the rqp_breaker_state gauge.
const (
	StateClosed   = 0
	StateOpen     = 1
	StateHalfOpen = 2
)

// Breaker is a consecutive-failure circuit breaker. The zero value is not
// useful; construct with NewBreaker. A nil breaker admits everything.
type Breaker struct {
	// Threshold is the number of consecutive failures that opens the
	// circuit.
	Threshold int
	// Cooldown is how long the circuit stays open before admitting one
	// half-open probe.
	Cooldown time.Duration

	// now replaces time.Now in tests.
	now func() time.Time

	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	probing  bool
}

// NewBreaker returns a closed breaker; threshold < 1 is clamped to 1.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{Threshold: threshold, Cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed: always when closed, one
// probe per cooldown expiry when open. A nil breaker always allows.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.now().Sub(b.openedAt) >= b.Cooldown {
			b.state = StateHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open: exactly one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds the outcome of an admitted request back: a half-open success
// closes the circuit, any failure at or past the threshold (re-)opens it.
func (b *Breaker) Record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = StateClosed
		b.fails = 0
		b.probing = false
		return
	}
	b.fails++
	if b.state == StateHalfOpen || b.fails >= b.Threshold {
		b.state = StateOpen
		b.openedAt = b.now()
		b.probing = false
	}
}

// Forget releases an admitted request without recording an outcome, for
// requests that were admitted but never exercised the dependency (e.g.
// rejected for a duplicate ID after admission). A half-open probe slot is
// returned so the next request can probe instead of wedging the circuit.
func (b *Breaker) Forget() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// RetryAfter reports how long until an open circuit admits its next probe —
// the honest Retry-After value for a breaker shed, as opposed to the full
// configured cooldown. Zero when the circuit is not open (or nil).
func (b *Breaker) RetryAfter() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen {
		return 0
	}
	remaining := b.Cooldown - b.now().Sub(b.openedAt)
	if remaining < 0 {
		return 0
	}
	return remaining
}

// State reports the current state (StateClosed/StateOpen/StateHalfOpen);
// the half-open transition happens on the next Allow, not here. A nil
// breaker reports StateClosed.
func (b *Breaker) State() int {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
