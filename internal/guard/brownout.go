// Staged brownout: a deterministic load-shedding ladder driven by the
// pressure score. Instead of a binary healthy/shedding flip, the node
// degrades scope in stages — first the optional work (hedges, trace
// sampling), then the expensive reads, then builds, finally everything —
// and recovers the same ladder downward with hysteresis, so a node
// hovering at a threshold never flaps between serving and shedding.
//
// The stage semantics (enforced by the server, published as
// rqp_brownout_stage):
//
//	0  normal
//	1  disable hedging, drop trace sampling
//	2  shed expensive read endpoints (sweeps, atlas)
//	3  shed session builds; admit runs only
//	4  full shed (health, metrics and fleet endpoints still served)
package guard

import "sync"

// BrownoutStages is the number of degradation stages above normal.
const BrownoutStages = 4

// BrownoutConfig tunes the stage thresholds and hysteresis. The zero value
// takes the defaults noted per field.
type BrownoutConfig struct {
	// Enter holds the pressure thresholds at which each stage engages:
	// Enter[i] is the minimum pressure for stage i+1. Must be
	// non-decreasing; default [0.5, 0.75, 0.9, 0.97].
	Enter []float64
	// ExitMargin is the hysteresis band: the controller only considers
	// leaving stage i once pressure drops below Enter[i-1]-ExitMargin.
	// Default 0.1.
	ExitMargin float64
	// DwellTicks is how many consecutive Observe ticks pressure must stay
	// below a stage's exit threshold before the controller steps down one
	// stage — the time-domain half of the hysteresis. Default 3.
	DwellTicks int
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if len(c.Enter) == 0 {
		c.Enter = []float64{0.5, 0.75, 0.9, 0.97}
	}
	if c.ExitMargin <= 0 {
		c.ExitMargin = 0.1
	}
	if c.DwellTicks < 1 {
		c.DwellTicks = 3
	}
	return c
}

// Brownout is the staged controller. Feed it one pressure sample per tick
// via Observe; read the current stage anywhere with Stage. A nil controller
// is permanently at stage 0 — the single-node default.
type Brownout struct {
	cfg BrownoutConfig

	mu    sync.Mutex
	stage int
	calm  int // consecutive ticks below the current stage's exit threshold
}

// NewBrownout returns a stage-0 controller.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	return &Brownout{cfg: cfg.withDefaults()}
}

// target maps a pressure sample to the stage it calls for, ignoring
// hysteresis: the highest stage whose enter threshold the sample clears.
func (b *Brownout) target(pressure float64) int {
	t := 0
	for i, th := range b.cfg.Enter {
		if i >= BrownoutStages {
			break
		}
		if pressure >= th {
			t = i + 1
		}
	}
	return t
}

// Observe feeds one pressure sample and returns the stage after the tick
// plus whether it changed. Ascent is one stage per tick toward the target
// (a pressure spike walks the ladder, it doesn't jump to full shed off one
// sample); descent requires DwellTicks consecutive samples below the
// current stage's exit threshold (enter minus margin) and also steps one
// stage at a time.
func (b *Brownout) Observe(pressure float64) (stage int, changed bool) {
	if b == nil {
		return 0, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.stage
	if t := b.target(pressure); t > b.stage {
		b.stage++
		b.calm = 0
		return b.stage, true
	}
	if b.stage > 0 {
		exit := b.cfg.Enter[b.stage-1] - b.cfg.ExitMargin
		if pressure < exit {
			b.calm++
			if b.calm >= b.cfg.DwellTicks {
				b.stage--
				b.calm = 0
			}
		} else {
			b.calm = 0
		}
	}
	return b.stage, b.stage != old
}

// Stage reports the current stage; 0 on a nil controller.
func (b *Brownout) Stage() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stage
}
