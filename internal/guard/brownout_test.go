package guard

import (
	"testing"
	"time"
)

func TestPressureUtilizationTerm(t *testing.T) {
	v := Vitals{RunInflight: 32, RunLimit: 64}
	if got := v.Pressure(); got != 0.5 {
		t.Fatalf("half-utilized run class: pressure %v, want 0.5", got)
	}
	v = Vitals{RunInflight: 64, RunLimit: 64, BuildInflight: 0, BuildLimit: 4}
	if got := v.Pressure(); got != 1 {
		t.Fatalf("saturated run class: pressure %v, want 1 (max, not mean)", got)
	}
	// Overshoot (inflight can briefly exceed a shrinking AIMD limit) clamps.
	v = Vitals{RunInflight: 100, RunLimit: 10}
	if got := v.Pressure(); got != 1 {
		t.Fatalf("overshoot: pressure %v, want clamped 1", got)
	}
}

func TestPressureUnlimitedClassesScoreZero(t *testing.T) {
	// Limit 0 means "unlimited", not "saturated at any inflight".
	v := Vitals{RunInflight: 500, RunLimit: 0, BuildInflight: 7, BuildLimit: 0}
	if got := v.Pressure(); got != 0 {
		t.Fatalf("unlimited classes: pressure %v, want 0", got)
	}
}

func TestPressureShedRateAndBreakerTerms(t *testing.T) {
	if got := (Vitals{ShedRate: shedRateScale}).Pressure(); got != 1 {
		t.Fatalf("shed rate at scale: pressure %v, want 1", got)
	}
	if got := (Vitals{ShedRate: shedRateScale / 2}).Pressure(); got != 0.5 {
		t.Fatalf("shed rate at half scale: pressure %v, want 0.5", got)
	}
	if got := (Vitals{BreakerState: StateOpen}).Pressure(); got != breakerOpenPressure {
		t.Fatalf("open breaker: pressure %v, want %v", got, breakerOpenPressure)
	}
	if got := (Vitals{BreakerState: StateHalfOpen}).Pressure(); got != 0 {
		t.Fatalf("half-open breaker alone: pressure %v, want 0", got)
	}
}

func TestBrownoutAscendsOneStagePerTick(t *testing.T) {
	b := NewBrownout(BrownoutConfig{})
	// A pressure spike past every threshold must walk the ladder, not jump.
	for want := 1; want <= BrownoutStages; want++ {
		stage, changed := b.Observe(1.0)
		if stage != want || !changed {
			t.Fatalf("tick %d: stage %d changed=%v, want %d true", want, stage, changed, want)
		}
	}
	// At the top the stage holds without reporting change.
	if stage, changed := b.Observe(1.0); stage != BrownoutStages || changed {
		t.Fatalf("holding at top: stage %d changed=%v", stage, changed)
	}
}

func TestBrownoutDescendsWithDwellHysteresis(t *testing.T) {
	b := NewBrownout(BrownoutConfig{DwellTicks: 3})
	b.Observe(0.6) // → stage 1 (enter[0]=0.5)

	// Inside the hysteresis band (below enter, above enter-margin): hold.
	for i := 0; i < 10; i++ {
		if stage, _ := b.Observe(0.45); stage != 1 {
			t.Fatalf("band tick %d: stage %d, want 1 (0.45 ≥ exit 0.4)", i, stage)
		}
	}
	// Below the exit threshold but not for DwellTicks yet: still hold.
	for i := 0; i < 2; i++ {
		if stage, _ := b.Observe(0.1); stage != 1 {
			t.Fatalf("dwell tick %d: stage %d, want 1", i, stage)
		}
	}
	// Third consecutive calm tick steps down.
	if stage, changed := b.Observe(0.1); stage != 0 || !changed {
		t.Fatalf("after dwell: stage %d changed=%v, want 0 true", stage, changed)
	}
}

func TestBrownoutCalmCounterResetsOnPressureBlip(t *testing.T) {
	b := NewBrownout(BrownoutConfig{DwellTicks: 3})
	b.Observe(0.6)
	b.Observe(0.1)
	b.Observe(0.1)
	b.Observe(0.45) // blip back into the band: calm streak resets
	b.Observe(0.1)
	b.Observe(0.1)
	if stage := b.Stage(); stage != 1 {
		t.Fatalf("stage %d after interrupted dwell, want 1", stage)
	}
	if stage, _ := b.Observe(0.1); stage != 0 {
		t.Fatalf("stage %d after full dwell, want 0", stage)
	}
}

func TestBrownoutDescendsOneStageAtATime(t *testing.T) {
	b := NewBrownout(BrownoutConfig{DwellTicks: 1})
	for i := 0; i < BrownoutStages; i++ {
		b.Observe(1.0)
	}
	// Pressure collapses to zero: even with DwellTicks 1 the controller
	// steps 4→3→2→1→0, one stage per tick.
	for want := BrownoutStages - 1; want >= 0; want-- {
		if stage, _ := b.Observe(0); stage != want {
			t.Fatalf("descent: stage %d, want %d", b.Stage(), want)
		}
	}
}

func TestBrownoutNilIsStageZero(t *testing.T) {
	var b *Brownout
	if stage, changed := b.Observe(1.0); stage != 0 || changed {
		t.Fatalf("nil controller: Observe → %d %v", stage, changed)
	}
	if b.Stage() != 0 {
		t.Fatal("nil controller: Stage != 0")
	}
}

func TestJitterRetryAfterDeterministicAndBounded(t *testing.T) {
	const base = 10
	spread := base/2 + 3
	seen := map[int]bool{}
	for _, seed := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		v := JitterRetryAfter(seed, base)
		if v != JitterRetryAfter(seed, base) {
			t.Fatalf("seed %q: jitter not deterministic", seed)
		}
		if v < base || v >= base+spread {
			t.Fatalf("seed %q: %d outside [%d, %d)", seed, v, base, base+spread)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("8 seeds produced %d distinct values; jitter is not spreading", len(seen))
	}
}

func TestJitterRetryAfterFloorsBase(t *testing.T) {
	if v := JitterRetryAfter("x", 0); v < 1 {
		t.Fatalf("base 0: %d, want ≥ 1", v)
	}
	if v := JitterRetryAfter("x", -5); v < 1 {
		t.Fatalf("negative base: %d, want ≥ 1", v)
	}
}

func TestBreakerRetryAfterVitalsHintShape(t *testing.T) {
	// The RetryAfterHint pipeline: an open breaker's remaining cooldown is
	// what an owner advertises; sanity-check the plumbing pieces agree.
	b := NewBreaker(1, 10*time.Second)
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatal("breaker should be open")
	}
	if ra := b.RetryAfter(); ra <= 0 || ra > 10*time.Second {
		t.Fatalf("RetryAfter %v outside (0, 10s]", ra)
	}
}
