package guard

import (
	"math"
	"sync"
	"testing"
)

// TestAIMDConcurrencyInvariants is a property-style race test: many
// goroutines hammer TryAcquire/Release/Cancel with mixed outcomes, and the
// limiter's core invariants must hold at every observation point — the
// in-flight count never goes negative (checked continuously by observer
// goroutines racing the workers), never exceeds the configured max, and the
// limit stays inside [min, max] no matter how the AIMD feedback interleaves.
// Run with -race; the mutex discipline is half of what's under test.
func TestAIMDConcurrencyInvariants(t *testing.T) {
	const (
		minLimit = 2
		maxLimit = 24
		workers  = 16
		rounds   = 2000
	)
	l := NewAIMD(8, minLimit, maxLimit)

	var violations sync.Map
	check := func() {
		if n := l.Inflight(); n < 0 {
			violations.Store("negative inflight", n)
		} else if n > maxLimit {
			violations.Store("inflight above max", n)
		}
		if lim := l.Limit(); lim < minLimit || lim > maxLimit {
			violations.Store("limit out of bounds", lim)
		}
	}

	done := make(chan struct{})
	var observers sync.WaitGroup
	for i := 0; i < 2; i++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			for {
				select {
				case <-done:
					return
				default:
					check()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if !l.TryAcquire() {
					continue
				}
				check()
				// Deterministic mixed outcomes per (worker, round): success,
				// failure, and admissions rolled back before the work ran.
				switch (w + i) % 4 {
				case 0:
					l.Release(false)
				case 1:
					l.Cancel()
				default:
					l.Release(true)
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	observers.Wait()

	violations.Range(func(k, v any) bool {
		t.Errorf("invariant violated: %v = %v", k, v)
		return true
	})
	if n := l.Inflight(); n != 0 {
		t.Fatalf("inflight %d after all workers released, want 0", n)
	}
	if lim := l.Limit(); lim < minLimit || lim > maxLimit {
		t.Fatalf("final limit %v outside [%d, %d]", lim, minLimit, maxLimit)
	}
	// The floor arithmetic must still admit work after the storm.
	if !l.TryAcquire() {
		t.Fatal("idle limiter refused admission after the storm")
	}
	l.Release(true)
}

// TestBulkheadConcurrencyInvariants hammers a fixed-cap bulkhead the same
// way: the holder count must never exceed cap nor go negative, and every
// admission must be releasable.
func TestBulkheadConcurrencyInvariants(t *testing.T) {
	const (
		capacity = 5
		workers  = 16
		rounds   = 2000
	)
	b := NewBulkhead(capacity)

	var violations sync.Map
	check := func() {
		if n := b.Inflight(); n < 0 {
			violations.Store("negative inflight", n)
		} else if n > capacity {
			violations.Store("inflight above cap", n)
		}
	}

	done := make(chan struct{})
	var observers sync.WaitGroup
	observers.Add(1)
	go func() {
		defer observers.Done()
		for {
			select {
			case <-done:
				return
			default:
				check()
			}
		}
	}()

	var admitted, refused int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var a, r int64
			for i := 0; i < rounds; i++ {
				if b.TryAcquire() {
					a++
					check()
					b.Release()
				} else {
					r++
				}
			}
			mu.Lock()
			admitted += a
			refused += r
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(done)
	observers.Wait()

	violations.Range(func(k, v any) bool {
		t.Errorf("invariant violated: %v = %v", k, v)
		return true
	})
	if n := b.Inflight(); n != 0 {
		t.Fatalf("inflight %d after all workers released, want 0", n)
	}
	if admitted == 0 {
		t.Fatal("no admissions at all — the test exercised nothing")
	}
	if admitted+refused != workers*rounds {
		t.Fatalf("accounting: admitted %d + refused %d != %d", admitted, refused, workers*rounds)
	}
}

// TestAIMDLimitConvergesWithinBounds drives pure success and pure failure
// streams and asserts the asymptotes: growth saturates at max, collapse
// floors at min.
func TestAIMDLimitConvergesWithinBounds(t *testing.T) {
	l := NewAIMD(8, 2, 16)
	for i := 0; i < 1000; i++ {
		if l.TryAcquire() {
			l.Release(true)
		}
	}
	if lim := l.Limit(); math.Abs(lim-16) > 1e-9 {
		t.Fatalf("limit %v after sustained success, want 16", lim)
	}
	for i := 0; i < 100; i++ {
		if l.TryAcquire() {
			l.Release(false)
		}
	}
	if lim := l.Limit(); lim != 2 {
		t.Fatalf("limit %v after sustained failure, want floor 2", lim)
	}
}
