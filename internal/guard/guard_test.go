package guard

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// stubExec is a scriptable substrate: execRes/spillRes are returned as-is,
// and honorCeiling makes it cooperate with the watchdog's cost ceiling the
// way the real engine does.
type stubExec struct {
	execRes      engine.Result
	spillRes     engine.SpillResult
	honorCeiling bool
	gotCeiling   float64
	hadCeiling   bool
}

func (s *stubExec) Execute(p *plan.Plan, budget float64) engine.Result { return s.execRes }

func (s *stubExec) ExecuteSpill(p *plan.Plan, dim int, budget float64) (engine.SpillResult, bool) {
	return s.spillRes, true
}

func (s *stubExec) ExecuteCtx(ctx context.Context, p *plan.Plan, budget float64) (engine.Result, error) {
	s.gotCeiling, s.hadCeiling = engine.CostCeiling(ctx)
	if s.honorCeiling && s.hadCeiling && s.execRes.Spent > s.gotCeiling {
		return engine.Result{Completed: false, Spent: s.gotCeiling}, engine.ErrBudgetAborted
	}
	return s.execRes, nil
}

func (s *stubExec) ExecuteSpillCtx(ctx context.Context, p *plan.Plan, dim int, budget float64) (engine.SpillResult, bool, error) {
	s.gotCeiling, s.hadCeiling = engine.CostCeiling(ctx)
	if s.honorCeiling && s.hadCeiling && s.spillRes.Spent > s.gotCeiling {
		res := s.spillRes
		res.Completed = false
		res.Spent = s.gotCeiling
		return res, true, engine.ErrBudgetAborted
	}
	return s.spillRes, true, nil
}

func TestWatchdogArmsCeilingWithSlack(t *testing.T) {
	stub := &stubExec{execRes: engine.Result{Completed: true, Spent: 50}}
	w := New(stub, Policy{Slack: 0.25})
	res, err := w.ExecuteCtx(context.Background(), nil, 100)
	if err != nil || !res.Completed {
		t.Fatalf("clean run should pass through: res=%+v err=%v", res, err)
	}
	if !stub.hadCeiling || stub.gotCeiling != 125 {
		t.Fatalf("ceiling = (%g,%v), want (125,true)", stub.gotCeiling, stub.hadCeiling)
	}
	if w.Aborts() != 0 {
		t.Fatalf("clean run recorded %d aborts", w.Aborts())
	}
}

func TestWatchdogClampsNonCooperativeOverrun(t *testing.T) {
	stub := &stubExec{execRes: engine.Result{Completed: false, Spent: 200}}
	w := New(stub, Policy{Slack: 0.1})
	rec := telemetry.NewRecorder()
	ctx := telemetry.With(context.Background(), rec)

	res, err := w.ExecuteCtx(ctx, nil, 100)
	if !engine.IsBudgetAbort(err) {
		t.Fatalf("err = %v, want budget abort", err)
	}
	if res.Completed || math.Abs(res.Spent-110) > 1e-9 {
		t.Fatalf("res = %+v, want incomplete spent at ceiling 110", res)
	}
	if !engine.Terminal(err) {
		t.Fatalf("budget abort must classify terminal")
	}
	if w.Aborts() != 1 {
		t.Fatalf("Aborts() = %d, want 1", w.Aborts())
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != telemetry.BudgetAbort || math.Abs(evs[0].Spent-110) > 1e-9 {
		t.Fatalf("events = %+v, want one budget_abort at 110", evs)
	}
}

func TestWatchdogPropagatesCooperativeAbort(t *testing.T) {
	stub := &stubExec{spillRes: engine.SpillResult{Completed: false, Spent: 300, Learned: 0.2}, honorCeiling: true}
	w := New(stub, Policy{})
	res, ok, err := w.ExecuteSpillCtx(context.Background(), nil, 0, 100)
	if !ok || !engine.IsBudgetAbort(err) {
		t.Fatalf("ok=%v err=%v, want cooperative budget abort", ok, err)
	}
	if res.Spent != 100 {
		t.Fatalf("spent = %g, want clamped at ceiling 100 (slack 0)", res.Spent)
	}
	if res.Learned != 0.2 {
		t.Fatalf("partial learned bound must survive the abort, got %g", res.Learned)
	}
	if w.Aborts() != 1 {
		t.Fatalf("Aborts() = %d, want 1", w.Aborts())
	}
}

func TestWatchdogDetectsESSEscape(t *testing.T) {
	stub := &stubExec{spillRes: engine.SpillResult{Completed: true, Spent: 10, Learned: 42}}
	w := New(stub, Policy{Slack: 1})
	rec := telemetry.NewRecorder()
	ctx := telemetry.With(context.Background(), rec)

	_, ok, err := w.ExecuteSpillCtx(ctx, nil, 1, 100)
	if !ok || !IsEscape(err) {
		t.Fatalf("ok=%v err=%v, want ESS escape", ok, err)
	}
	if !engine.Terminal(err) {
		t.Fatalf("escape must classify terminal so the retry layer never re-runs it")
	}
	if w.Escapes() != 1 {
		t.Fatalf("Escapes() = %d, want 1", w.Escapes())
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != telemetry.ESSEscape || evs[0].Dim != 1 || evs[0].Learned != 42 {
		t.Fatalf("events = %+v, want one ess_escape on dim 1", evs)
	}
}

func TestWatchdogValidLearnedPassesThrough(t *testing.T) {
	for _, learned := range []float64{0, 0.5, 1} {
		stub := &stubExec{spillRes: engine.SpillResult{Completed: true, Spent: 10, Learned: learned}}
		w := New(stub, Policy{})
		_, _, err := w.ExecuteSpillCtx(context.Background(), nil, 0, 100)
		if err != nil {
			t.Fatalf("learned %g flagged as escape: %v", learned, err)
		}
	}
}

func TestWatchdogDisabledAndUnbudgetedPassThrough(t *testing.T) {
	stub := &stubExec{execRes: engine.Result{Completed: false, Spent: 1e6}}
	w := New(stub, Policy{Disabled: true})
	if _, err := w.ExecuteCtx(context.Background(), nil, 1); err != nil {
		t.Fatalf("disabled watchdog must not abort: %v", err)
	}
	w = New(stub, Policy{})
	if _, err := w.ExecuteCtx(context.Background(), nil, inf()); err != nil {
		t.Fatalf("unbudgeted execution must not be guarded: %v", err)
	}
	if stub.hadCeiling {
		t.Fatalf("unbudgeted execution saw a ceiling")
	}
}

func inf() float64 { var z float64; return 1 / z }

func TestAIMDGrowsAndShrinks(t *testing.T) {
	l := NewAIMD(2, 1, 8)
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("limiter must admit up to its initial limit")
	}
	if l.TryAcquire() {
		t.Fatal("limiter admitted past its limit")
	}
	l.Release(true)
	l.Release(true)
	if l.Limit() <= 2 {
		t.Fatalf("limit = %g, want additive growth past 2", l.Limit())
	}
	for i := 0; i < 10; i++ {
		if l.TryAcquire() {
			l.Release(false)
		}
	}
	if l.Limit() != 1 {
		t.Fatalf("limit = %g, want multiplicative decrease to floor 1", l.Limit())
	}
	for i := 0; i < 100; i++ {
		if l.TryAcquire() {
			l.Release(true)
		}
	}
	if l.Limit() > 8 {
		t.Fatalf("limit = %g, want capped at 8", l.Limit())
	}
	if l.Inflight() != 0 {
		t.Fatalf("inflight = %d, want 0 after paired releases", l.Inflight())
	}
}

func TestAIMDNilSafe(t *testing.T) {
	var l *AIMD
	if !l.TryAcquire() {
		t.Fatal("nil limiter must admit")
	}
	l.Release(true)
	if l.Limit() != 0 || l.Inflight() != 0 {
		t.Fatal("nil limiter must report zeros")
	}
}

func TestBulkhead(t *testing.T) {
	b := NewBulkhead(2)
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("bulkhead must admit up to cap")
	}
	if b.TryAcquire() {
		t.Fatal("bulkhead admitted past cap")
	}
	b.Release()
	if !b.TryAcquire() {
		t.Fatal("released slot must be reusable")
	}
	if nb := NewBulkhead(0); nb != nil {
		t.Fatal("cap 0 must mean unlimited (nil)")
	}
	var nilB *Bulkhead
	if !nilB.TryAcquire() {
		t.Fatal("nil bulkhead must admit")
	}
	nilB.Release()
}

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(2, time.Minute)
	b.now = func() time.Time { return clock }

	if !b.Allow() || b.State() != StateClosed {
		t.Fatal("fresh breaker must be closed")
	}
	b.Record(false)
	if b.State() != StateClosed {
		t.Fatal("one failure under threshold must not open")
	}
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatal("threshold failures must open the breaker")
	}
	if b.Allow() {
		t.Fatal("open breaker must reject before cooldown")
	}
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("expired cooldown must admit the half-open probe")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %d, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("only one probe may be in flight")
	}
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatal("failed probe must re-open")
	}
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe after re-open")
	}
	b.Record(true)
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("successful probe must close the breaker")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() || b.State() != StateClosed {
		t.Fatal("nil breaker must admit and report closed")
	}
	b.Record(false)
	b.Forget()
	if b.RetryAfter() != 0 {
		t.Fatal("nil breaker must report zero RetryAfter")
	}
}

func TestBreakerRetryAfterReportsRemainingCooldown(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(1, time.Minute)
	b.now = func() time.Time { return clock }

	if b.RetryAfter() != 0 {
		t.Fatal("closed breaker must report zero RetryAfter")
	}
	b.Record(false) // opens
	if got := b.RetryAfter(); got != time.Minute {
		t.Fatalf("freshly opened: RetryAfter = %v, want the full cooldown", got)
	}
	// The advertised wait shrinks as the cooldown elapses — the honest
	// Retry-After, not a constant.
	clock = clock.Add(45 * time.Second)
	if got := b.RetryAfter(); got != 15*time.Second {
		t.Fatalf("45s in: RetryAfter = %v, want 15s", got)
	}
	clock = clock.Add(time.Minute)
	if got := b.RetryAfter(); got != 0 {
		t.Fatalf("past cooldown: RetryAfter = %v, want 0 (probe due)", got)
	}
	if !b.Allow() || b.State() != StateHalfOpen {
		t.Fatal("cooldown expiry must admit the probe")
	}
	if got := b.RetryAfter(); got != 0 {
		t.Fatalf("half-open: RetryAfter = %v, want 0", got)
	}
}

func TestBreakerForgetReleasesProbeSlot(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(1, time.Minute)
	b.now = func() time.Time { return clock }

	b.Record(false)
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("probe must be admitted after cooldown")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be rejected")
	}
	// The admitted request never exercised the dependency (e.g. it was
	// rejected for a duplicate ID): Forget must return the probe slot
	// without recording a verdict, so the circuit neither closes nor wedges.
	b.Forget()
	if b.State() != StateHalfOpen {
		t.Fatalf("state after Forget = %d, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("Forget must release the probe slot for the next request")
	}
	b.Record(true)
	if b.State() != StateClosed {
		t.Fatal("successful probe after Forget must close the circuit")
	}
}
