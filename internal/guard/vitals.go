// Load vitals: the per-node health snapshot gossiped across the fleet on
// heartbeat responses, and the scalar pressure score both the edge-shedding
// proxy and the brownout controller steer by. The struct is the wire format
// (JSON on /v1/fleet/health and /v1/fleet/vitals), so fields are stable.
package guard

import (
	"hash/fnv"
	"math"
)

// Vitals is one node's load snapshot. Zero values mean "unknown/disabled"
// (a limiter that isn't configured reports limit 0, which the pressure
// score skips rather than reading as saturation).
type Vitals struct {
	// Node is the advertising node's self address ("" single-node).
	Node string `json:"node,omitempty"`
	// Stage is the node's current brownout stage (0 = normal).
	Stage int `json:"stage"`

	// Per-class admission state: in-flight count and the AIMD limiter's
	// current (fractional) ceiling. Limit 0 means the class is unlimited.
	RunInflight   int     `json:"runInflight"`
	RunLimit      float64 `json:"runLimit"`
	BuildInflight int     `json:"buildInflight"`
	BuildLimit    float64 `json:"buildLimit"`

	// ShedRate is the node's recent shed throughput in requests/second
	// (overload rejections per second over the last vitals window).
	ShedRate float64 `json:"shedRate"`
	// BreakerState is the session-build breaker state (0 closed, 1 open,
	// 2 half-open).
	BreakerState int `json:"breakerState"`

	// Process resource signals, reported for operators; they do not feed
	// the pressure score (a big heap is not saturation).
	HeapBytes  uint64 `json:"heapBytes"`
	Goroutines int    `json:"goroutines"`

	// RetryAfterHint is the Retry-After (seconds) the node advertises for
	// edge sheds performed on its behalf — derived from its own limiter,
	// breaker and eviction state, so a peer rejecting at the edge quotes
	// the same backoff the owner itself would have.
	RetryAfterHint int `json:"retryAfterHint,omitempty"`
}

// shedRateScale is the shed throughput (req/s) that counts as pressure 1.0
// on its own: a node rejecting this many requests per second is saturated
// regardless of what its inflight gauges say at sample time.
const shedRateScale = 10.0

// breakerOpenPressure is the pressure floor while the build breaker is
// open: the node's build dependency is failing, so new work routed at it
// mostly burns retries.
const breakerOpenPressure = 0.8

// Pressure collapses the vitals into one scalar in [0, 1]: the max of the
// per-class utilizations (inflight over current AIMD limit), the normalized
// shed rate, and a floor while the breaker is open. Max, not mean — one
// saturated dimension is enough to make routing more work at the node a
// bad idea.
func (v Vitals) Pressure() float64 {
	p := 0.0
	if v.RunLimit > 0 {
		p = math.Max(p, clamp01(float64(v.RunInflight)/v.RunLimit))
	}
	if v.BuildLimit > 0 {
		p = math.Max(p, clamp01(float64(v.BuildInflight)/v.BuildLimit))
	}
	p = math.Max(p, clamp01(v.ShedRate/shedRateScale))
	if v.BreakerState == StateOpen {
		p = math.Max(p, breakerOpenPressure)
	}
	return p
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// JitterRetryAfter spreads a base Retry-After (seconds) deterministically
// per request, so a burst of synchronized clients shed in the same instant
// does not come back in the same instant. The seed is the request's trace
// identity (X-Request-ID): the same request always sees the same value
// (testable), different requests fan out over [base, base+spread). The
// spread grows with the base — ±0 on nothing, a few seconds on short waits,
// proportionally wider on breaker cooldowns — and the result never drops
// below the base, which remains the honest "capacity plausibly frees up"
// estimate.
func JitterRetryAfter(seed string, base int) int {
	if base < 1 {
		base = 1
	}
	spread := base/2 + 3
	h := fnv.New32a()
	_, _ = h.Write([]byte(seed))
	return base + int(h.Sum32()%uint32(spread))
}
