// Adaptive overload control: an AIMD concurrency limiter and a fixed-cap
// bulkhead. Both are nil-safe — a nil limiter admits everything — so the
// server can leave overload control disabled by simply not constructing
// them.
package guard

import (
	"math"
	"sync"
)

// AIMD is an additive-increase/multiplicative-decrease concurrency limiter,
// the TCP-congestion-control shape applied to request admission: every
// successful completion nudges the limit up by ~1/limit (one extra slot per
// "round trip" of the current window), every failure halves it. The limit
// converges to the concurrency the backend actually sustains without a
// static tuning knob.
type AIMD struct {
	mu       sync.Mutex
	limit    float64
	min, max float64
	inflight int
}

// NewAIMD returns a limiter starting at initial concurrency, bounded to
// [min, max]. Non-positive bounds are sanitized (min ≥ 1, max ≥ min), and
// the initial limit is clamped into the bounds.
func NewAIMD(initial, min, max int) *AIMD {
	lo := math.Max(1, float64(min))
	hi := math.Max(lo, float64(max))
	l := math.Min(hi, math.Max(lo, float64(initial)))
	return &AIMD{limit: l, min: lo, max: hi}
}

// TryAcquire admits the request if the in-flight count is below the current
// limit. A nil limiter admits everything.
func (l *AIMD) TryAcquire() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if float64(l.inflight) >= math.Floor(l.limit) {
		return false
	}
	l.inflight++
	return true
}

// Release returns the slot and feeds the outcome back into the limit:
// success grows it additively, failure shrinks it multiplicatively. Callers
// must pair every successful TryAcquire with exactly one Release.
func (l *AIMD) Release(ok bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight > 0 {
		l.inflight--
	}
	if ok {
		l.limit = math.Min(l.max, l.limit+1/l.limit)
	} else {
		l.limit = math.Max(l.min, l.limit/2)
	}
}

// Cancel returns the slot without feeding any outcome into the limit — for
// admissions rolled back before the guarded work ran (e.g. a downstream
// bulkhead or breaker refused), where neither growth nor shrink is earned.
func (l *AIMD) Cancel() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.inflight > 0 {
		l.inflight--
	}
	l.mu.Unlock()
}

// Limit reports the current (fractional) concurrency limit; 0 on a nil
// limiter.
func (l *AIMD) Limit() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// Inflight reports the current in-flight count; 0 on a nil limiter.
func (l *AIMD) Inflight() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Bulkhead is a fixed-capacity admission gate scoped to one resource (one
// session): it isolates a noisy tenant so a burst against a single session
// cannot monopolize the shared run limiter. A nil bulkhead admits
// everything.
type Bulkhead struct {
	mu       sync.Mutex
	cap      int
	inflight int
}

// NewBulkhead returns a bulkhead admitting at most cap concurrent holders;
// non-positive cap returns nil (unlimited).
func NewBulkhead(cap int) *Bulkhead {
	if cap <= 0 {
		return nil
	}
	return &Bulkhead{cap: cap}
}

// TryAcquire admits if capacity remains.
func (b *Bulkhead) TryAcquire() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.inflight >= b.cap {
		return false
	}
	b.inflight++
	return true
}

// Release returns a slot.
func (b *Bulkhead) Release() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.inflight > 0 {
		b.inflight--
	}
	b.mu.Unlock()
}

// Inflight reports the current holder count; 0 on a nil bulkhead.
func (b *Bulkhead) Inflight() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inflight
}
