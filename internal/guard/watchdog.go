// Package guard enforces the runtime side of the paper's guarantees. The
// MSO bounds (PlanBouquet's 4(1+λ)ρ, SpillBound's D²+3D) are theorems about
// what the executor is *supposed* to do: charge at most the contour budget
// per execution and keep every probed location inside the ESS. A misbehaving
// operator breaks both premises silently. This package turns the premises
// into runtime invariants:
//
//   - The budget watchdog (this file) caps what any single budgeted
//     execution may charge at budget·(1+Slack), with the λ-style slack
//     explicit. An execution that would charge past the ceiling is
//     hard-aborted via cooperative cancellation (engine.WithCostCeiling),
//     the clamped charge stands in the ledger, a budget_abort event is
//     recorded, and discovery resumes with the next plan/contour — exactly
//     the "failed step" shape the MSO proofs already account for.
//
//   - The ESS-escape fallback (also this file) checks every learned
//     selectivity against the ESS axioms. A value the space cannot contain
//     (negative, non-finite, or past 1) means run-time monitoring has gone
//     wrong and the discovery index would leave the enumerated space; the
//     guard records an ess_escape event and returns a terminal error the
//     session layer converts into the safe path (the max-corner terminal
//     plan, which Lemma 3.2 guarantees completes at any ESS location).
//
//   - The overload controls (limiter.go, breaker.go) apply the same
//     philosophy to the serving layer: bound concurrent work, shed the
//     excess early, and stop hammering a failing dependency.
package guard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// essEps is the tolerance above 1 before a learned selectivity counts as
// outside the ESS — absorbs float noise from the monitoring bisection
// without masking real escapes (injected skews overshoot by orders of
// magnitude).
const essEps = 1e-9

// Policy configures the budget watchdog.
type Policy struct {
	// Slack is the tolerated overshoot fraction above the assigned budget
	// before the watchdog aborts: the enforcement ceiling is
	// budget·(1+Slack). It plays the same role as the paper's λ cost-model
	// slack — an explicit, bounded allowance rather than silent trust — and
	// enters the effective guarantee the same way. Negative values are
	// treated as 0 (abort at exactly the budget).
	Slack float64
	// Disabled turns the watchdog and the ESS-escape check off entirely,
	// restoring the unguarded pre-guard behaviour.
	Disabled bool
}

// escapeError is the terminal error returned when a learned selectivity
// leaves the ESS. It implements the Terminal method engine.Classify probes
// for, so the resilience layer never retries it and the session layer can
// detect it with IsEscape without the engine package importing guard.
type escapeError struct {
	dim     int
	learned float64
}

func (e *escapeError) Error() string {
	return fmt.Sprintf("guard: learned selectivity %g on dim %d escapes the ESS", e.learned, e.dim)
}

// Terminal marks the error as never-retryable for engine.Classify.
func (e *escapeError) Terminal() bool { return true }

// IsEscape reports whether the error records an ESS escape detected by the
// watchdog.
func IsEscape(err error) bool {
	var ee *escapeError
	return errors.As(err, &ee)
}

// Watchdog wraps a ContextExecutor with ledger enforcement: every budgeted
// call runs under a cost ceiling of budget·(1+Slack), overruns hard-abort
// with engine.ErrBudgetAborted, and spill-mode learned selectivities are
// validated against the ESS. It implements engine.ContextExecutor, so it
// slots between the discovery runners and the retry layer transparently.
type Watchdog struct {
	// Exec is the wrapped substrate.
	Exec engine.ContextExecutor
	// Policy is the enforcement configuration.
	Policy Policy

	mu      sync.Mutex
	aborts  int
	escapes int
}

// New wraps the executor with the given policy.
func New(e engine.ContextExecutor, p Policy) *Watchdog {
	return &Watchdog{Exec: e, Policy: p}
}

// Aborts reports how many executions the watchdog hard-aborted at the
// ceiling.
func (w *Watchdog) Aborts() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aborts
}

// Escapes reports how many ESS escapes the watchdog detected.
func (w *Watchdog) Escapes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.escapes
}

// ceiling returns the enforcement ceiling for the budget, and whether the
// call is guarded at all: unbudgeted (+Inf) executions — the Native
// baseline, the degradation fallback — have no ledger to enforce.
func (w *Watchdog) ceiling(budget float64) (float64, bool) {
	if w.Policy.Disabled || math.IsInf(budget, 1) || budget <= 0 {
		return 0, false
	}
	slack := w.Policy.Slack
	if slack < 0 {
		slack = 0
	}
	return budget * (1 + slack), true
}

// recordAbort counts the abort and emits the budget_abort event.
func (w *Watchdog) recordAbort(ctx context.Context, dim int, budget, spent float64, mode string) {
	w.mu.Lock()
	w.aborts++
	w.mu.Unlock()
	telemetry.From(ctx).Record(telemetry.Event{
		Kind: telemetry.BudgetAbort, Dim: dim, Budget: budget, Spent: spent, Mode: mode,
	})
}

// inESS reports whether a fully- or partially-learned selectivity is a value
// the ESS can contain. Partial learns (monitoring lower bounds) are ≤ the
// true value, so the same axioms apply.
func inESS(learned float64) bool {
	return !math.IsNaN(learned) && !math.IsInf(learned, 0) &&
		learned >= 0 && learned <= 1+essEps
}

// ExecuteCtx runs the plan under budget with the watchdog ceiling armed.
func (w *Watchdog) ExecuteCtx(ctx context.Context, p *plan.Plan, budget float64) (engine.Result, error) {
	ceil, guarded := w.ceiling(budget)
	if !guarded {
		return w.Exec.ExecuteCtx(ctx, p, budget)
	}
	res, err := w.Exec.ExecuteCtx(engine.WithCostCeiling(ctx, ceil), p, budget)
	if err == nil && res.Spent > ceil {
		// The substrate ignored the ceiling (a plain executor without
		// cooperative cancellation): clamp the charge post-hoc and convert
		// the overrun into the same terminal abort.
		res = engine.Result{Completed: false, Spent: ceil}
		err = fmt.Errorf("guard: charge exceeded ceiling %.4g (budget %.4g): %w",
			ceil, budget, engine.ErrBudgetAborted)
	}
	if engine.IsBudgetAbort(err) {
		w.recordAbort(ctx, -1, budget, res.Spent, "exec")
	}
	return res, err
}

// ExecuteSpillCtx runs the spill-mode execution with the ceiling armed and
// validates the learned selectivity against the ESS.
func (w *Watchdog) ExecuteSpillCtx(ctx context.Context, p *plan.Plan, dim int, budget float64) (engine.SpillResult, bool, error) {
	if w.Policy.Disabled {
		return w.Exec.ExecuteSpillCtx(ctx, p, dim, budget)
	}
	ceil, guarded := w.ceiling(budget)
	execCtx := ctx
	if guarded {
		execCtx = engine.WithCostCeiling(ctx, ceil)
	}
	res, ok, err := w.Exec.ExecuteSpillCtx(execCtx, p, dim, budget)
	if err == nil && ok && guarded && res.Spent > ceil {
		res.Completed = false
		res.Spent = ceil
		err = fmt.Errorf("guard: spill charge exceeded ceiling %.4g (budget %.4g): %w",
			ceil, budget, engine.ErrBudgetAborted)
	}
	aborted := engine.IsBudgetAbort(err)
	if aborted {
		w.recordAbort(ctx, dim, budget, res.Spent, "spill")
	}
	// Validate the observation whenever monitoring produced one — aborted
	// spills included: their partial lower bound still feeds checkpoint state
	// and Lemma 3.1 pruning, so a corrupted value must escape, not linger.
	// The escape outranks the abort (both are terminal; only the escape
	// reroutes the run).
	if (err == nil || aborted) && ok && !inESS(res.Learned) {
		w.mu.Lock()
		w.escapes++
		w.mu.Unlock()
		telemetry.From(ctx).Record(telemetry.Event{
			Kind: telemetry.ESSEscape, Dim: dim, Budget: budget, Spent: res.Spent,
			Learned: res.Learned,
		})
		return res, ok, &escapeError{dim: dim, learned: res.Learned}
	}
	return res, ok, err
}

// Execute implements the plain Executor interface by delegating through the
// guarded path with a background context; an abort surfaces as the clamped,
// incomplete result.
func (w *Watchdog) Execute(p *plan.Plan, budget float64) engine.Result {
	res, _ := w.ExecuteCtx(context.Background(), p, budget)
	return res
}

// ExecuteSpill implements the plain Executor interface.
func (w *Watchdog) ExecuteSpill(p *plan.Plan, dim int, budget float64) (engine.SpillResult, bool) {
	res, ok, _ := w.ExecuteSpillCtx(context.Background(), p, dim, budget)
	return res, ok
}

var _ engine.ContextExecutor = (*Watchdog)(nil)
