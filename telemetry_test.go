package repro

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// execEvents filters the stream to the budgeted-execution events (the ones
// with a one-to-one Steps counterpart).
func execEvents(events []telemetry.Event) []telemetry.Event {
	var out []telemetry.Event
	for _, ev := range events {
		if ev.Kind == telemetry.PlanExec || ev.Kind == telemetry.SpillExec {
			out = append(out, ev)
		}
	}
	return out
}

func kinds(events []telemetry.Event) []telemetry.Kind {
	out := make([]telemetry.Kind, len(events))
	for i, ev := range events {
		out[i] = ev.Kind
	}
	return out
}

// TestSpillBoundEventGolden pins the exact event sequence of a 2D SpillBound
// run: contour entry, engine budget accounting, spill-mode execution,
// half-space prune on full learning (Lemma 3.1), contour jumps (Lemma 3.2),
// the terminal 1-D phase's regular executions, and the Done summary — and
// that the rendered stream reproduces the legacy trace byte for byte.
func TestSpillBoundEventGolden(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.02, 0.3}
	res, err := sess.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("run recorded no events")
	}
	for i, ev := range res.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
	}
	if got := telemetry.RenderTrace(res.Events); got != res.Trace {
		t.Errorf("rendered events diverge from trace:\n--- render ---\n%s--- trace ---\n%s", got, res.Trace)
	}

	// The stream opens by entering the cheapest contour.
	if first := res.Events[0]; first.Kind != telemetry.ContourEnter || first.Contour != 1 {
		t.Fatalf("first event = %+v, want contour_enter of contour 1", first)
	}
	if last := res.Events[len(res.Events)-1]; last.Kind != telemetry.Done {
		t.Fatalf("last event = %+v, want done", last)
	} else {
		if last.TotalCost != res.TotalCost || last.SubOpt != res.SubOpt || last.Algorithm != "spillbound" {
			t.Errorf("done summary %+v does not match result (cost %g subopt %g)", last, res.TotalCost, res.SubOpt)
		}
	}

	// Golden kind sequence, reconstructed from the step list: every step is
	// an engine budget_spend followed by its execution event, a completed
	// spill is followed by its half-space prune, and the stream ends with
	// done. Contour entries are validated separately (they also fire for
	// contours the discovery skips without executing).
	var want []telemetry.Kind
	for _, st := range res.Steps {
		want = append(want, telemetry.BudgetSpend)
		if st.SpillDim >= 0 {
			want = append(want, telemetry.SpillExec)
			if st.Completed {
				want = append(want, telemetry.HalfSpacePrune)
			}
		} else {
			want = append(want, telemetry.PlanExec)
		}
	}
	want = append(want, telemetry.Done)
	var got []telemetry.Kind
	for _, ev := range res.Events {
		if ev.Kind != telemetry.ContourEnter {
			got = append(got, ev.Kind)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("event kinds = %v, want %v", got, want)
	}

	// Contour entries advance strictly (Lemma 3.2's quantum progress: the
	// discovery never revisits a cheaper contour).
	lastContour := 0
	for _, ev := range res.Events {
		if ev.Kind != telemetry.ContourEnter {
			continue
		}
		if ev.Contour <= lastContour {
			t.Errorf("contour_enter %d after %d", ev.Contour, lastContour)
		}
		lastContour = ev.Contour
	}
	if lastContour < 2 {
		t.Errorf("discovery never jumped contours (max entered = %d)", lastContour)
	}

	// Execution events carry their step's exact fields.
	execs := execEvents(res.Events)
	if len(execs) != len(res.Steps) {
		t.Fatalf("%d execution events for %d steps", len(execs), len(res.Steps))
	}
	sawSpill, sawPrune, sawPlan := false, false, false
	for i, ev := range execs {
		st := res.Steps[i]
		if ev.Contour != st.Contour || ev.PlanID != st.PlanID || ev.Dim != st.SpillDim ||
			ev.Budget != st.Budget || ev.Spent != st.Spent || ev.Completed != st.Completed {
			t.Errorf("event %d = %+v does not match step %+v", i, ev, st)
		}
		if ev.Kind == telemetry.SpillExec {
			sawSpill = true
			if ev.Learned != st.Learned {
				t.Errorf("spill event learned %g != step %g", ev.Learned, st.Learned)
			}
		} else {
			sawPlan = true
		}
	}
	for _, ev := range res.Events {
		if ev.Kind == telemetry.HalfSpacePrune {
			sawPrune = true
			if ev.Dim < 0 || ev.Learned <= 0 {
				t.Errorf("prune event %+v missing dim/learned", ev)
			}
		}
	}
	if !sawSpill || !sawPrune || !sawPlan {
		t.Errorf("2D SpillBound run should spill (%t), prune (%t) and finish in the 1-D phase (%t)",
			sawSpill, sawPrune, sawPlan)
	}

	// The stream is deterministic: an identical run records identical events.
	again, err := sess.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Events, again.Events) {
		t.Errorf("identical runs recorded different event streams:\n%v\n%v",
			kinds(res.Events), kinds(again.Events))
	}
}

// TestNativeRunEvents pins the baseline's minimal stream: one native
// execution event and the summary.
func TestNativeRunEvents(t *testing.T) {
	sess := newTestSession(t)
	res, err := sess.Run(Native, Location{0.02, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(res.Events)
	want := []telemetry.Kind{telemetry.PlanExec, telemetry.Done}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("native event kinds = %v, want %v", got, want)
	}
	if res.Events[0].Mode != "native" || !res.Events[0].Completed {
		t.Errorf("native exec event = %+v", res.Events[0])
	}
	if telemetry.RenderTrace(res.Events) != res.Trace {
		t.Errorf("native render mismatch:\n%s", res.Trace)
	}
	if !strings.HasPrefix(res.Trace, "native: plan at estimate") {
		t.Errorf("trace = %q", res.Trace)
	}
}

// TestDegradedRunEventGolden drives a persistent fault through the ladder
// and pins the resilience half of the stream: the retry attempts, the final
// give-up note, the Degrade record, and the derived RunResult fields.
func TestDegradedRunEventGolden(t *testing.T) {
	sess := newTestSession(t)
	res, err := sess.RunWithFaults(context.Background(), SpillBound, Location{0.02, 0.3},
		&FaultPlan{FailExecAt: 2, FailExecCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("run not degraded:\n%s", res.Trace)
	}
	if telemetry.RenderTrace(res.Events) != res.Trace {
		t.Errorf("rendered events diverge from degraded trace:\n%s", res.Trace)
	}

	attempts, finals := 0, 0
	finalSeq, degradeSeq := -1, -1
	var degrade telemetry.Event
	for _, ev := range res.Events {
		switch ev.Kind {
		case telemetry.Retry:
			if ev.Final {
				finals++
				finalSeq = ev.Seq
			} else {
				attempts++
			}
		case telemetry.Degrade:
			degradeSeq = ev.Seq
			degrade = ev
		}
	}
	if attempts != res.Retries {
		t.Errorf("retry attempt events = %d, RunResult.Retries = %d", attempts, res.Retries)
	}
	if attempts < 2 {
		t.Errorf("attempts = %d, want the default policy's 2", attempts)
	}
	if finals != 1 {
		t.Fatalf("final retry events = %d, want exactly 1", finals)
	}
	if degradeSeq < 0 {
		t.Fatal("no degrade event recorded")
	}
	if degradeSeq < finalSeq {
		t.Errorf("degrade (seq %d) precedes the give-up note (seq %d)", degradeSeq, finalSeq)
	}
	if degrade.Detail != res.DegradedReason {
		t.Errorf("degrade detail %q != DegradedReason %q", degrade.Detail, res.DegradedReason)
	}
	if degrade.Algorithm != "spillbound" || degrade.Guarantee != sess.Guarantee(SpillBound) {
		t.Errorf("degrade event %+v missing downgraded guarantee", degrade)
	}
	if last := res.Events[len(res.Events)-1]; last.Kind != telemetry.Done {
		t.Errorf("last event = %+v, want done", last)
	}
}

// TestConcurrentRunRecorders runs many recorders against one session at
// once (the race-detector half of the telemetry contract): every run's
// stream must be self-consistent and render exactly its own trace.
func TestConcurrentRunRecorders(t *testing.T) {
	sess := newTestSession(t)
	algos := []Algorithm{Native, PlanBouquet, SpillBound, AlignedBound}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := algos[i%len(algos)]
			var res RunResult
			var err error
			if i%2 == 0 {
				res, err = sess.RunContext(context.Background(), a, Location{0.02, 0.3})
			} else {
				res, err = sess.RunWithFaults(context.Background(), a, Location{0.02, 0.3},
					&FaultPlan{FailExecAt: 1})
			}
			if err != nil {
				t.Errorf("run %d (%v): %v", i, a, err)
				return
			}
			for j, ev := range res.Events {
				if ev.Seq != j {
					t.Errorf("run %d: event %d has Seq %d (stream cross-contaminated?)", i, j, ev.Seq)
					return
				}
			}
			if telemetry.RenderTrace(res.Events) != res.Trace {
				t.Errorf("run %d (%v): rendered events diverge from trace", i, a)
			}
			if last := res.Events[len(res.Events)-1]; last.Kind != telemetry.Done {
				t.Errorf("run %d: last event %+v, want done", i, last)
			}
		}(i)
	}
	wg.Wait()
}
