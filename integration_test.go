package repro

import (
	"bytes"
	"math"
	"testing"
)

// TestEndToEndEQ is the cross-cutting integration test: starting from the
// paper's example query as raw SQL, identify the epps automatically, build
// the ESS in parallel, persist and reload it, process the query with every
// strategy in both the simulated and physical engines, and verify the
// structural guarantees across an exhaustive sweep.
func TestEndToEndEQ(t *testing.T) {
	bq := EQBenchmark()
	cat := TPCHCatalog(1)

	// 1. Automatic epp identification must recover the spec's designation
	//    (order-insensitive).
	epps, err := IdentifyEPPs(cat, bq.SQL, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(epps) != 2 {
		t.Fatalf("identified %v", epps)
	}

	// 2. Parallel ESS construction.
	opts := DefaultOptions()
	opts.GridRes = 10
	sess, err := NewSessionParallel(cat, bq.SQL, epps, opts, 4)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Persistence round trip.
	var disk bytes.Buffer
	if err := sess.SaveESS(&disk); err != nil {
		t.Fatal(err)
	}
	warm, err := LoadSession(cat, bq.SQL, epps, opts, &disk)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Every strategy completes on the reloaded session; robust ones
	//    stay within their guarantees.
	truth := Location{0.002, 0.0005}
	for _, a := range []Algorithm{Native, PlanBouquet, SpillBound, AlignedBound} {
		res, err := warm.Run(a, truth)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if g := warm.Guarantee(a); !math.IsInf(g, 1) && res.SubOpt > g {
			t.Errorf("%v: SubOpt %.2f exceeds guarantee %.2f", a, res.SubOpt, g)
		}
	}

	// 5. Exhaustive sweeps respect the bounds and the expected ordering.
	sb, err := warm.Sweep(SpillBound, 0)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := warm.Sweep(AlignedBound, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sb.MSO > warm.Guarantee(SpillBound) || ab.MSO > warm.Guarantee(AlignedBound) {
		t.Errorf("sweep MSOs exceed bounds: SB %.2f AB %.2f", sb.MSO, ab.MSO)
	}
	if nat := warm.NativeMSO(1); nat < sb.MSO {
		t.Errorf("native MSO %.1f below SpillBound's %.2f", nat, sb.MSO)
	}

	// 6. Physical execution over real rows (capped cardinalities).
	phys, err := warm.RunPhysical(SpillBound, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !strictlyPositive(phys.TotalCost, phys.OptimalCost, phys.SubOpt) {
		t.Errorf("physical run degenerate: %+v", phys)
	}

	// 7. The rendering surfaces work on the same session.
	if _, err := warm.ContourMap(); err != nil {
		t.Errorf("ContourMap: %v", err)
	}
	if _, err := warm.RenderRun(truth); err != nil {
		t.Errorf("RenderRun: %v", err)
	}
}

func strictlyPositive(xs ...float64) bool {
	for _, x := range xs {
		if !(x > 0) || math.IsInf(x, 0) || math.IsNaN(x) {
			return false
		}
	}
	return true
}

// TestGuaranteeMonotoneInD sanity-checks the structural formulas across
// the Q91 dimensional ladder on real sessions.
func TestGuaranteeMonotoneInD(t *testing.T) {
	prevSB, prevABLo := 0.0, 0.0
	for d := 2; d <= 4; d++ {
		opts := BenchmarkOptions()
		opts.GridRes = []int{0, 0, 8, 5, 4}[d]
		sess, err := NewBenchmarkSession(Q91Benchmark(d), opts)
		if err != nil {
			t.Fatal(err)
		}
		sb := sess.Guarantee(SpillBound)
		abLo := sess.GuaranteeLowerAB()
		if sb <= prevSB || abLo <= prevABLo {
			t.Errorf("D=%d: guarantees not increasing (SB %g, ABlo %g)", d, sb, abLo)
		}
		if sb != float64(d*d+3*d) || abLo != float64(2*d+2) {
			t.Errorf("D=%d: formulas off (SB %g, ABlo %g)", d, sb, abLo)
		}
		prevSB, prevABLo = sb, abLo
	}
}

// TestSuiteBoundCompliance runs SpillBound and AlignedBound on every
// benchmark query of the paper's evaluation (shrunken grids) and verifies,
// per query: completion everywhere, the D²+3D structural bound, and AB's
// retained upper bound — the library's core promise, checked across all
// join geometries in one table-driven sweep.
func TestSuiteBoundCompliance(t *testing.T) {
	for _, bq := range BenchmarkQueries() {
		bq := bq
		t.Run(bq.Name, func(t *testing.T) {
			opts := BenchmarkOptions()
			switch {
			case bq.D <= 3:
				opts.GridRes = 6
			case bq.D == 4:
				opts.GridRes = 5
			default:
				opts.GridRes = 4
			}
			sess, err := NewBenchmarkSession(bq, opts)
			if err != nil {
				t.Fatal(err)
			}
			bound := sess.Guarantee(SpillBound)
			sb, err := sess.Sweep(SpillBound, 48)
			if err != nil {
				t.Fatal(err)
			}
			if sb.MSO > bound {
				t.Errorf("SB MSO %.2f exceeds D²+3D = %g", sb.MSO, bound)
			}
			ab, err := sess.Sweep(AlignedBound, 48)
			if err != nil {
				t.Fatal(err)
			}
			if ab.MSO > bound {
				t.Errorf("AB MSO %.2f exceeds retained bound %g", ab.MSO, bound)
			}
			if sb.MSO < 1 || ab.MSO < 1 {
				t.Error("sub-optimality accounting broken")
			}
		})
	}
}
