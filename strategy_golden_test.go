package repro

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateStrategyGolden = flag.Bool("update", false, "rewrite strategy golden files")

// goldenRun is one pinned run: the session/strategy/truth coordinates plus
// the full RunResult (events, trace, steps) normalized for comparison.
type goldenRun struct {
	Query    string          `json:"query"`
	Strategy string          `json:"strategy"`
	Truth    []float64       `json:"truth"`
	Durable  bool            `json:"durable,omitempty"`
	Result   json.RawMessage `json:"result"`
}

// goldenSweep is one pinned whole-space sweep summary.
type goldenSweep struct {
	Query    string          `json:"query"`
	Strategy string          `json:"strategy"`
	Max      int             `json:"max"`
	Summary  json.RawMessage `json:"summary"`
}

// goldenDoc is the committed golden file layout.
type goldenDoc struct {
	Runs   []goldenRun   `json:"runs"`
	Sweeps []goldenSweep `json:"sweeps"`
}

// normalizeAlgorithm re-marshals v with its "Algorithm" field replaced by
// the strategy's canonical name, so the golden is stable across the
// Algorithm enum-to-string redesign (the only representation change the
// redesign is allowed to make).
func normalizeAlgorithm(t *testing.T, v interface{}, name string) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	m["Algorithm"] = name
	out, err := json.MarshalIndent(m, "    ", "  ")
	if err != nil {
		t.Fatalf("remarshal: %v", err)
	}
	return out
}

// goldenSession builds the deterministic session used by the golden suite.
func goldenSession(t *testing.T, query string, res int, dataDir string) *Session {
	t.Helper()
	bq, ok := BenchmarkQueryByName(query)
	if !ok {
		t.Fatalf("unknown benchmark query %q", query)
	}
	opts := BenchmarkOptions()
	opts.GridRes = res
	opts.Workers = 1
	opts.DataDir = dataDir
	sess, err := NewBenchmarkSession(bq, opts)
	if err != nil {
		t.Fatalf("build %s: %v", query, err)
	}
	return sess
}

// buildStrategyGolden produces the full golden document from the live code.
func buildStrategyGolden(t *testing.T) goldenDoc {
	t.Helper()
	ctx := context.Background()
	strategies := []Algorithm{Native, PlanBouquet, SpillBound, AlignedBound}
	cases := []struct {
		query  string
		res    int
		truths [][]float64
	}{
		{"2D_EQ", 8, [][]float64{{0.9, 0.9}, {0.001, 0.05}}},
		{"3D_Q91", 5, [][]float64{{0.5, 0.2, 0.01}, {0.9, 0.9, 0.9}}},
	}

	var doc goldenDoc
	for _, c := range cases {
		sess := goldenSession(t, c.query, c.res, "")
		for _, a := range strategies {
			for _, truth := range c.truths {
				res, err := sess.RunContext(ctx, a, truth)
				if err != nil {
					t.Fatalf("%s/%s run %v: %v", c.query, a.String(), truth, err)
				}
				doc.Runs = append(doc.Runs, goldenRun{
					Query: c.query, Strategy: a.String(), Truth: truth,
					Result: normalizeAlgorithm(t, res, a.String()),
				})
			}
			sum, err := sess.SweepContext(ctx, a, 25)
			if err != nil {
				t.Fatalf("%s/%s sweep: %v", c.query, a.String(), err)
			}
			doc.Sweeps = append(doc.Sweeps, goldenSweep{
				Query: c.query, Strategy: a.String(), Max: 25,
				Summary: normalizeAlgorithm(t, sum, a.String()),
			})
		}
	}

	// One durable run pins the checkpoint event stream (checkpoint_save
	// cadence, ledger spends, run id detail) through the redesign.
	durable := goldenSession(t, "2D_EQ", 8, t.TempDir())
	res, err := durable.RunDurable(ctx, SpillBound, []float64{0.9, 0.9}, "golden-run")
	if err != nil {
		t.Fatalf("durable run: %v", err)
	}
	doc.Runs = append(doc.Runs, goldenRun{
		Query: "2D_EQ", Strategy: SpillBound.String(), Truth: []float64{0.9, 0.9},
		Durable: true,
		Result:  normalizeAlgorithm(t, res, SpillBound.String()),
	})
	return doc
}

// TestStrategyGoldenEquivalence pins Native/PB/SB/AB RunResults (events,
// trace, steps, costs) and sweep summaries against committed goldens, so
// the pluggable-strategy port can be verified behavior-identical. Run with
// -update to regenerate from the current code.
func TestStrategyGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite builds two sessions; skipped in -short")
	}
	path := filepath.Join("testdata", "strategy_golden.json")
	doc := buildStrategyGolden(t)
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("marshal golden doc: %v", err)
	}
	got = append(got, '\n')

	if *updateStrategyGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d runs, %d sweeps)", path, len(doc.Runs), len(doc.Sweeps))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if string(got) != string(want) {
		// Locate the first diverging entry for a readable failure.
		var wantDoc goldenDoc
		if err := json.Unmarshal(want, &wantDoc); err != nil {
			t.Fatalf("golden file corrupt: %v", err)
		}
		for i := range doc.Runs {
			if i >= len(wantDoc.Runs) {
				t.Fatalf("golden mismatch: %d runs generated, %d pinned", len(doc.Runs), len(wantDoc.Runs))
			}
			if string(doc.Runs[i].Result) != string(wantDoc.Runs[i].Result) {
				t.Fatalf("golden mismatch at run %d (%s/%s truth=%v):\n got: %s\nwant: %s",
					i, doc.Runs[i].Query, doc.Runs[i].Strategy, doc.Runs[i].Truth,
					doc.Runs[i].Result, wantDoc.Runs[i].Result)
			}
		}
		for i := range doc.Sweeps {
			if i >= len(wantDoc.Sweeps) {
				t.Fatalf("golden mismatch: %d sweeps generated, %d pinned", len(doc.Sweeps), len(wantDoc.Sweeps))
			}
			if string(doc.Sweeps[i].Summary) != string(wantDoc.Sweeps[i].Summary) {
				t.Fatalf("golden mismatch at sweep %d (%s/%s):\n got: %s\nwant: %s",
					i, doc.Sweeps[i].Query, doc.Sweeps[i].Strategy,
					doc.Sweeps[i].Summary, wantDoc.Sweeps[i].Summary)
			}
		}
		t.Fatalf("golden mismatch (document-level; regenerate with -update if intended)")
	}
}
