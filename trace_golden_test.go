package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Span-tree goldens: the trace layer promises that span trees are a pure,
// deterministic function of (trace ID, event stream), so the trees of a
// pinned scenario can be committed byte-for-byte like the event goldens.

const (
	goldenTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	goldenTraceID     = "0af7651916cd43dd8448eb211c80319c"
)

// tracedCtx returns a context carrying the suite's fixed traceparent, so
// every pinned run joins the same trace and the span IDs are reproducible.
func tracedCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, err := WithTraceparent(context.Background(), goldenTraceparent)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// goldenTraceEntry is one pinned span tree.
type goldenTraceEntry struct {
	Name string          `json:"name"`
	Tree json.RawMessage `json:"tree"`
}

// traceTreeJSON derives and indents the run's span tree for the golden file.
func traceTreeJSON(t *testing.T, res RunResult) json.RawMessage {
	t.Helper()
	if res.TraceID != goldenTraceID {
		t.Fatalf("run trace ID %q, want the fixed traceparent's %q", res.TraceID, goldenTraceID)
	}
	raw, err := TraceTree(res)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "    ", "  "); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// buildTraceGolden produces the pinned trees: a clean SpillBound scenario
// run, a fault-degraded run, and a crash-resumed run whose two incarnations
// share one trace ID.
func buildTraceGolden(t *testing.T) []goldenTraceEntry {
	t.Helper()
	sess := goldenSession(t, "2D_EQ", 8, "")

	clean, err := sess.RunContext(tracedCtx(t), SpillBound, Location{0.001, 0.05})
	if err != nil {
		t.Fatal(err)
	}

	degraded, err := sess.RunWithFaults(tracedCtx(t), SpillBound, Location{0.001, 0.05},
		&FaultPlan{FailExecAt: 2, FailExecCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !degraded.Degraded {
		t.Fatal("fault plan did not degrade the run")
	}

	durable := goldenSession(t, "2D_EQ", 8, t.TempDir())
	crashed, err := durable.RunDurableWithFaults(tracedCtx(t), SpillBound, Location{0.9, 0.9},
		"golden-crash", &FaultPlan{CrashAtCheckpoint: 2})
	if !ErrRunCrashed(err) {
		t.Fatalf("want crash, got %v", err)
	}
	// The resume context carries no traceparent: the run must rejoin its
	// original trace from the durable snapshot, one trace ID spanning both
	// process incarnations.
	resumed, err := durable.ResumeRun(context.Background(), "golden-crash")
	if err != nil {
		t.Fatal(err)
	}
	if resumed.TraceID != crashed.TraceID || !resumed.Resumed {
		t.Fatalf("resumed incarnation trace %q != crashed %q", resumed.TraceID, crashed.TraceID)
	}

	return []goldenTraceEntry{
		{Name: "spillbound_clean", Tree: traceTreeJSON(t, clean)},
		{Name: "spillbound_degraded", Tree: traceTreeJSON(t, degraded)},
		{Name: "spillbound_crash_resumed", Tree: traceTreeJSON(t, resumed)},
	}
}

// TestTraceGolden pins the three scenario span trees against the committed
// golden. Regenerate with -update.
func TestTraceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite builds two sessions; skipped in -short")
	}
	path := filepath.Join("testdata", "trace_golden.json")
	entries := buildTraceGolden(t)
	got, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateStrategyGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d trees)", path, len(entries))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		var wantEntries []goldenTraceEntry
		if err := json.Unmarshal(want, &wantEntries); err != nil {
			t.Fatalf("golden file corrupt: %v", err)
		}
		for i := range entries {
			if i >= len(wantEntries) {
				t.Fatalf("golden mismatch: %d trees generated, %d pinned", len(entries), len(wantEntries))
			}
			if string(entries[i].Tree) != string(wantEntries[i].Tree) {
				t.Fatalf("golden mismatch at %s:\n got: %s\nwant: %s",
					entries[i].Name, entries[i].Tree, wantEntries[i].Tree)
			}
		}
		t.Fatal("golden mismatch (document-level; regenerate with -update if intended)")
	}
}

// TestTraceSerialParallelIdentical proves the span-tree determinism claim
// across build parallelism: the same seed built with one worker and with
// four yields byte-identical build trees (chunk normalization) and
// byte-identical run trees (the ESS, and hence the discovery, is the same
// surface either way).
func TestTraceSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two sessions; skipped in -short")
	}
	type built struct {
		sess   *Session
		events []telemetry.Event
	}
	build := func(workers int) built {
		bq, ok := BenchmarkQueryByName("2D_EQ")
		if !ok {
			t.Fatal("unknown benchmark query")
		}
		opts := BenchmarkOptions()
		opts.GridRes = 8
		opts.Workers = workers
		rec := telemetry.NewRecorder()
		sess, err := NewBenchmarkSessionContext(telemetry.With(context.Background(), rec), bq, opts)
		if err != nil {
			t.Fatal(err)
		}
		return built{sess: sess, events: rec.Events()}
	}
	serial, parallel := build(1), build(4)

	a, err := trace.FromBuild(goldenTraceID, serial.events).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.FromBuild(goldenTraceID, parallel.events).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("build trees diverge between 1 and 4 workers:\n%s\n%s", a, b)
	}

	runA, err := serial.sess.RunContext(tracedCtx(t), SpillBound, Location{0.001, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	runB, err := parallel.sess.RunContext(tracedCtx(t), SpillBound, Location{0.001, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := TraceTree(runA)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := TraceTree(runB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("run trees diverge between serially and parallel-built sessions")
	}
}

// TestTraceResumeReplayDeterministic crashes two independent incarnation
// pairs at the same checkpoint and proves the resumed suffixes derive
// byte-identical span trees — the crash-resume path is as reproducible as
// the clean path.
func TestTraceResumeReplayDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two sessions; skipped in -short")
	}
	resumeTree := func() []byte {
		sess := goldenSession(t, "2D_EQ", 8, t.TempDir())
		_, err := sess.RunDurableWithFaults(tracedCtx(t), SpillBound, Location{0.9, 0.9},
			"replay", &FaultPlan{CrashAtCheckpoint: 2})
		if !ErrRunCrashed(err) {
			t.Fatalf("want crash, got %v", err)
		}
		resumed, err := sess.ResumeRun(context.Background(), "replay")
		if err != nil {
			t.Fatal(err)
		}
		if resumed.TraceID != goldenTraceID {
			t.Fatalf("resumed trace %q did not rejoin the original", resumed.TraceID)
		}
		j, err := TraceTree(resumed)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	if !bytes.Equal(resumeTree(), resumeTree()) {
		t.Error("two identical crash-resume replays derived different span trees")
	}
}
