package repro

import (
	"bytes"
	"math"
	"runtime"
	"strings"
	"testing"
)

func TestIdentifyEPPs(t *testing.T) {
	cat := TPCDSCatalog(10)
	epps, err := IdentifyEPPs(cat, paperEQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(epps) != 2 {
		t.Fatalf("epps = %v", epps)
	}
	// The identified predicates must be usable directly by NewSession.
	opts := DefaultOptions()
	opts.GridRes = 6
	sess, err := NewSession(cat, paperEQ, epps, opts)
	if err != nil {
		t.Fatalf("NewSession with identified epps: %v", err)
	}
	if sess.D() != 2 {
		t.Errorf("D = %d", sess.D())
	}
	// k <= 0 selects all join predicates.
	all, err := IdentifyEPPs(cat, paperEQ, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("conservative identification = %v, want all joins of the query", all)
	}
	if _, err := IdentifyEPPs(cat, "SELECT * FROM nope", 1); err == nil {
		t.Error("bad SQL should error")
	}
}

func TestContourRatioHelpers(t *testing.T) {
	if g := SpillBoundGuaranteeWithRatio(2, 2); g != 10 {
		t.Errorf("ratio-2 guarantee = %g", g)
	}
	r, b := OptimalContourRatio(2)
	if math.Abs(r-1.8165) > 0.01 || math.Abs(b-9.899) > 0.01 {
		t.Errorf("optimal ratio = %.4f / %.4f, want ≈1.8165 / 9.899", r, b)
	}
}

func TestSaveLoadSession(t *testing.T) {
	sess := newTestSession(t)
	var buf bytes.Buffer
	if err := sess.SaveESS(&buf); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.GridRes = 10
	loaded, err := LoadSession(TPCDSCatalog(10), paperEQ, paperEPPs, opts, &buf)
	if err != nil {
		t.Fatal(err)
	}
	truth := Location{0.01, 0.001}
	a, err := sess.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCost != b.TotalCost || a.Trace != b.Trace {
		t.Error("loaded session diverges from the original")
	}
	if _, err := LoadSession(TPCDSCatalog(10), paperEQ, paperEPPs, opts, strings.NewReader("junk")); err == nil {
		t.Error("corrupt payload should error")
	}
}

func TestNewSessionParallel(t *testing.T) {
	opts := DefaultOptions()
	opts.GridRes = 10
	cat := TPCDSCatalog(10)
	seq, err := NewSession(cat, paperEQ, paperEPPs, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSessionParallel(cat, paperEQ, paperEPPs, opts, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if seq.POSPSize() != par.POSPSize() || seq.ContourCount() != par.ContourCount() {
		t.Error("parallel session diverges from sequential")
	}
	truth := Location{0.02, 0.2}
	a, _ := seq.Run(AlignedBound, truth)
	b, _ := par.Run(AlignedBound, truth)
	if a.TotalCost != b.TotalCost {
		t.Errorf("run cost %g vs %g", a.TotalCost, b.TotalCost)
	}
	if _, err := NewSessionParallel(cat, paperEQ, paperEPPs, Options{GridRes: 1, Params: PostgresProfile()}, 2); err == nil {
		t.Error("bad grid should error")
	}
}

func TestRunWithCostError(t *testing.T) {
	sess := newTestSession(t)
	truth := Location{0.01, 0.1}
	clean, err := sess.Run(SpillBound, truth)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := sess.RunWithCostError(SpillBound, truth, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Inflated bound per Sec 7 (oracle in the perturbed world may be up to
	// (1+δ) cheaper than the model optimum used as denominator).
	bound := sess.Guarantee(SpillBound) * 1.3 * 1.3
	if perturbed.SubOpt > bound {
		t.Errorf("perturbed SubOpt %.2f exceeds inflated bound %.2f", perturbed.SubOpt, bound)
	}
	if perturbed.TotalCost == clean.TotalCost {
		t.Log("note: perturbation happened to leave the trace cost unchanged")
	}
	if _, err := sess.RunWithCostError(SpillBound, truth, -0.1, 1); err == nil {
		t.Error("negative delta should error")
	}
}

func TestContourMapAndRenderRun(t *testing.T) {
	sess := newTestSession(t)
	m, err := sess.ContourMap()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, "contour map") {
		t.Error("map header missing")
	}
	out, err := sess.RenderRun(Location{0.02, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "X") || !strings.Contains(out, "*") {
		t.Errorf("render missing trace markers:\n%s", out)
	}
	if _, err := sess.RenderRun(Location{0.5}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestGuaranteeRangeAB(t *testing.T) {
	sess := newTestSession(t)
	lo, hi := sess.GuaranteeRangeAB()
	if lo != 6 || hi != 10 {
		t.Errorf("AB range = [%g, %g], want [6, 10]", lo, hi)
	}
}

func TestRunPhysical(t *testing.T) {
	sess := newTestSession(t)
	const rowCap = 2000
	for _, a := range []Algorithm{PlanBouquet, SpillBound, AlignedBound} {
		res, err := sess.RunPhysical(a, rowCap)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if res.SubOpt < 1-1e-9 {
			t.Errorf("%v: physical SubOpt %g below 1", a, res.SubOpt)
		}
		if len(res.Steps) == 0 || res.Trace == "" {
			t.Errorf("%v: empty physical trace", a)
		}
	}
	if _, err := sess.RunPhysical(Native, rowCap); err == nil {
		t.Error("physical native should be rejected")
	}
}
