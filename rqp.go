// Package repro is a from-scratch Go reproduction of "Platform-Independent
// Robust Query Processing" (Karthik, Haritsa, Kenkre, Pandit, Krishnan —
// IEEE TKDE 2019; presented as the ICDE 2019 tutorial "Robust Query
// Processing: Mission Possible"). It implements the full stack the paper
// builds on — a TPC-DS-shaped catalog, an SPJ SQL front end, a
// PCM-compliant cost model, a System-R dynamic-programming optimizer with
// selectivity injection, the error-prone selectivity space (ESS) with its
// doubling iso-cost contours, and a budget/spill-capable simulated executor
// — plus the three robust processing algorithms it studies:
//
//   - PlanBouquet (baseline): contour-budgeted plan sequences, MSO ≤ 4(1+λ)ρ
//   - SpillBound (the paper's core): spill-mode executions with half-space
//     pruning, structural MSO ≤ D²+3D
//   - AlignedBound: contour/predicate-set alignment, MSO ∈ [2D+2, D²+3D]
//
// The entry point is a Session:
//
//	cat := repro.TPCDSCatalog(100)
//	sess, err := repro.NewSession(cat, sql, epps, repro.DefaultOptions())
//	res, err := sess.Run(repro.SpillBound, repro.Location{0.04, 0.1})
//	fmt.Println(res.Trace)
package repro

import (
	"repro/internal/catalog"
	"repro/internal/cost"
)

// Catalog is database metadata: tables, row counts, column statistics.
type Catalog = catalog.Catalog

// Table describes one base relation of a Catalog.
type Table = catalog.Table

// Column describes one attribute of a Table.
type Column = catalog.Column

// Location is a point of the error-prone selectivity space: Location[d] is
// the selectivity in (0,1] of the query's d-th error-prone predicate.
type Location = cost.Location

// CostParams holds a platform cost profile's operator constants.
type CostParams = cost.Params

// NewCatalog returns an empty catalog for custom schemas.
func NewCatalog(name string) *Catalog { return catalog.New(name) }

// TPCDSCatalog returns the TPC-DS-shaped synthetic catalog at the given
// scale factor (100 ≈ the paper's 100 GB configuration).
func TPCDSCatalog(scaleFactor float64) *Catalog { return catalog.TPCDS(scaleFactor) }

// IMDBCatalog returns the IMDB-shaped catalog backing the Join Order
// Benchmark analogue.
func IMDBCatalog() *Catalog { return catalog.IMDB() }

// TPCHCatalog returns the TPC-H-shaped catalog hosting the paper's
// motivating example query EQ (Fig. 1).
func TPCHCatalog(scaleFactor float64) *Catalog { return catalog.TPCH(scaleFactor) }

// PostgresProfile returns PostgreSQL-flavoured cost constants (the paper's
// evaluation platform).
func PostgresProfile() CostParams { return cost.PostgresLike() }

// CommercialProfile returns a second platform profile with different
// operator trade-offs, for platform-dependence studies.
func CommercialProfile() CostParams { return cost.CommercialLike() }
